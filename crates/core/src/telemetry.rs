//! Runtime telemetry: lock-free counters, log-bucketed latency
//! histograms, and a bounded per-thread transaction tracer.
//!
//! The paper's offline pipeline measures variance from full run logs; this
//! module gives a *live* view of the same execution: how many attempts
//! commit or abort (and why), how long commits and gate waits take, and —
//! via the tracer — the exact interleaving of attempts and TSA state
//! transitions, exportable to JSONL and to chrome://tracing JSON so a
//! run's state-residency timeline opens in Perfetto.
//!
//! ## Overhead discipline
//!
//! The STM runtimes hold an `Option<Arc<Telemetry>>`; when it is `None`
//! (the default) every instrumentation point in the hot path is a single
//! predictable branch and **no timestamp is read**. When enabled:
//!
//! * counters live in [`TELEMETRY_SHARDS`] cache-padded per-thread cells
//!   (relaxed atomic adds on the caller's own line — no contention, no
//!   false sharing);
//! * histograms are HDR-style power-of-2 buckets: one `ilog2` plus one
//!   relaxed add;
//! * timestamps come from the TSC on x86_64 (calibrated once at
//!   construction), not from `Instant`, so a sample is a couple of
//!   instructions ([`Clock`]);
//! * the tracer writes into a bounded per-thread ring buffer (oldest
//!   events overwritten, never unbounded growth) under an uncontended
//!   per-thread mutex, and can be sized to zero to keep counters only.
use crate::contention::ContentionStats;
use crate::drift::{DriftTracker, ModelDrift};
use crate::events::AbortCause;
use crate::ids::Pair;
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of cache-padded counter/tracer cells. Thread ids map to cells
/// by masking (as in the guidance tracker's shards): up to 64 threads get
/// private cells, beyond that threads alias and merely share one.
pub const TELEMETRY_SHARDS: usize = 64;

/// Histogram buckets: bucket 0 holds exact zeros; bucket *i* ≥ 1 holds
/// values in `[2^(i-1), 2^i)`; bucket 64 holds `[2^63, u64::MAX]`.
pub const NUM_BUCKETS: usize = 65;

/// Per-thread tracer ring capacity used by [`Telemetry::new`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 14;

/// Sentinel state id meaning "not a modeled state" in
/// [`TraceKind::StateTransition`] (mirrors the guidance gate's notion of
/// an unknown current state).
pub const UNKNOWN_STATE: u32 = u32::MAX;

/// Version of the exported artifact schema (`.prom`, `.jsonl`, verdict
/// and incident JSON). Bumped whenever a consumer could misparse an
/// artifact from a different build; `gstm-analyze` refuses mismatches
/// instead of silently misreading them. Stamped as the
/// `gstm_build_info{schema="..."}` Prometheus family and as the
/// `"schema"` field of the JSONL meta line and of JSON artifacts.
pub const SCHEMA_VERSION: u32 = 1;

/// Build version string stamped into exported artifacts. Falls back to
/// "unversioned" under bare-rustc builds, where cargo's package
/// metadata is absent.
pub const BUILD_VERSION: &str = match option_env!("CARGO_PKG_VERSION") {
    Some(v) => v,
    None => "unversioned",
};

/// Stable label and index for each [`AbortCause`] variant, in the order
/// used by [`TelemetrySnapshot::aborts`].
pub const ABORT_CAUSE_NAMES: [&str; 6] = [
    "read_locked",
    "read_version",
    "commit_lock_busy",
    "validation",
    "aborted_by_writer",
    "explicit",
];

/// Index of `cause` into [`ABORT_CAUSE_NAMES`] /
/// [`TelemetrySnapshot::aborts`].
pub fn cause_index(cause: AbortCause) -> usize {
    match cause {
        AbortCause::ReadLocked { .. } => 0,
        AbortCause::ReadVersion => 1,
        AbortCause::CommitLockBusy { .. } => 2,
        AbortCause::Validation => 3,
        AbortCause::AbortedByWriter { .. } => 4,
        AbortCause::Explicit => 5,
    }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// Nanosecond timestamps without `Instant` on the hot path.
///
/// On x86_64 the constructor calibrates the TSC against `Instant` once
/// (a short spin), after which [`Clock::now_ns`] is an `rdtsc` plus a
/// fixed-point multiply. Elsewhere — or if calibration fails — it falls
/// back to `Instant::now()` against a construction-time epoch.
pub struct Clock {
    epoch: Instant,
    #[cfg(target_arch = "x86_64")]
    base_tsc: u64,
    /// ns-per-tick in 24.24-ish fixed point (`ns << SHIFT / ticks`);
    /// 0 means "use the `Instant` fallback".
    #[cfg(target_arch = "x86_64")]
    mult: u64,
}

#[cfg(target_arch = "x86_64")]
const CLOCK_SHIFT: u32 = 24;

impl Clock {
    /// Construct and (on x86_64) calibrate the clock.
    pub fn new() -> Self {
        let epoch = Instant::now();
        #[cfg(target_arch = "x86_64")]
        {
            let t0 = Instant::now();
            let c0 = unsafe { std::arch::x86_64::_rdtsc() };
            // Spin ~300µs: long enough for sub-0.1% calibration error,
            // short enough that constructing Telemetry stays cheap.
            while t0.elapsed().as_micros() < 300 {
                std::hint::spin_loop();
            }
            let c1 = unsafe { std::arch::x86_64::_rdtsc() };
            let ns = t0.elapsed().as_nanos() as u64;
            let ticks = c1.wrapping_sub(c0);
            let mult = if ticks == 0 {
                0 // non-monotonic / unusable TSC: fall back to Instant
            } else {
                ((ns as u128) << CLOCK_SHIFT) as u64 / ticks
            };
            return Clock {
                epoch,
                base_tsc: c0,
                mult,
            };
        }
        #[cfg(not(target_arch = "x86_64"))]
        Clock { epoch }
    }

    /// Nanoseconds since this clock was constructed.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if self.mult != 0 {
            let ticks = unsafe { std::arch::x86_64::_rdtsc() }.wrapping_sub(self.base_tsc);
            return ((ticks as u128 * self.mult as u128) >> CLOCK_SHIFT) as u64;
        }
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A lock-free power-of-2 latency histogram (HDR-style): 65 buckets, a
/// relaxed add per sample, `count`/`sum`/`max` tracked alongside.
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of `v`: 0 for v == 0, else `ilog2(v) + 1`, so bucket
    /// *i* ≥ 1 covers `[2^(i-1), 2^i)` and `u64::MAX` saturates into the
    /// last bucket (index 64) without overflow.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            v.ilog2() as usize + 1
        }
    }

    /// Inclusive value range `[lo, hi]` of bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < NUM_BUCKETS, "bucket index out of range");
        if i == 0 {
            (0, 0)
        } else if i == NUM_BUCKETS - 1 {
            (1u64 << (i - 1), u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping on astronomically large totals is acceptable for a
        // diagnostic sum; the buckets stay exact.
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data copy of a [`LatencyHistogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wraps at `u64::MAX`).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// `q` (0 < q ≤ 1) of the samples; 0 when empty. A coarse quantile —
    /// exact only up to bucket resolution.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return LatencyHistogram::bucket_range(i).1;
            }
        }
        LatencyHistogram::bucket_range(NUM_BUCKETS - 1).1
    }

    /// Fold `other` into `self` bucket-wise (exact: counts and sums add;
    /// `max` takes the larger). An empty (default) snapshot grows the
    /// bucket vector to match `other`'s.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// One cache-padded counter cell. All adds are relaxed: each thread
/// writes (almost always) only its own cell, and the snapshot only needs
/// eventually-consistent totals.
#[derive(Default)]
#[repr(align(128))]
struct CounterCell {
    commits: AtomicU64,
    aborts: [AtomicU64; 6],
    gate_passed: AtomicU64,
    gate_waited: AtomicU64,
    gate_released: AtomicU64,
}

/// How a gate call resolved (mirrors [`crate::guidance::GateStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateOutcome {
    /// Passed immediately (allowed or unknown state).
    Passed,
    /// Waited at least one retry before passing.
    Waited,
    /// Released by the k-retry progress escape.
    Released,
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// What a trace event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A transaction attempt began (gate passed).
    Begin,
    /// The guidance gate held the thread for `wait_ns` before this
    /// attempt.
    GateWait {
        /// Nanoseconds spent inside the gate.
        wait_ns: u64,
    },
    /// An attempt rolled back.
    Abort {
        /// Why it rolled back.
        cause: AbortCause,
        /// The conflicting location's key
        /// ([`crate::events::ConflictSite::raw`]; 0 = unknown).
        addr: usize,
    },
    /// An attempt committed.
    Commit {
        /// Nanoseconds spent inside the STM commit protocol.
        commit_ns: u64,
        /// Transactional writes the attempt performed.
        writes: u32,
    },
    /// The TSA current state changed (recorded by the guided hook on
    /// commit). [`UNKNOWN_STATE`] means "outside the model".
    StateTransition {
        /// State id before the commit.
        from: u32,
        /// State id after the commit.
        to: u32,
    },
    /// The guided model was regenerated and hot-swapped (adaptive mode).
    /// Attributed to the synthetic pair `<0,0>`: the swap is performed by
    /// the model manager, not a worker transaction.
    ModelSwap {
        /// Epoch id of the newly installed model.
        epoch: u32,
        /// [`crate::drift::DriftVerdict::code`] of the verdict that
        /// triggered the regeneration.
        verdict: u8,
    },
    /// The guidance circuit breaker changed state. Attributed to the
    /// synthetic pair `<0,0>` like [`TraceKind::ModelSwap`].
    Breaker {
        /// [`crate::breaker::BreakerState::code`] left.
        from: u8,
        /// [`crate::breaker::BreakerState::code`] entered.
        to: u8,
        /// [`crate::breaker::BreakerCause::code`] of the transition.
        cause: u8,
    },
}

/// One tracer entry: globally sequenced, timestamped, attributed to a
/// `<txn,thread>` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Globally unique, monotonically assigned sequence number.
    pub seq: u64,
    /// Nanoseconds since the owning [`Telemetry`]'s construction.
    pub ts_ns: u64,
    /// The attempt this event concerns.
    pub pair: Pair,
    /// Payload.
    pub kind: TraceKind,
}

/// Bounded ring of trace events; `next` is the overwrite cursor once the
/// ring is full.
#[derive(Default)]
struct TraceRing {
    buf: Vec<TraceEvent>,
    next: usize,
}

/// A per-thread tracer shard, padded like the counter cells so tracing
/// threads never false-share.
#[derive(Default)]
#[repr(align(128))]
struct TraceShard {
    ring: Mutex<TraceRing>,
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// The telemetry subsystem: counters + histograms + tracer + clock.
///
/// Constructed once per instrumented run and shared (`Arc`) between the
/// STM runtime, the guidance hook, and whoever reads the snapshot.
pub struct Telemetry {
    cells: Box<[CounterCell]>,
    commit_ns: LatencyHistogram,
    backoff_ns: LatencyHistogram,
    gate_wait_ns: LatencyHistogram,
    clock: Clock,
    trace_cap: usize,
    trace_seq: AtomicU64,
    trace: Box<[TraceShard]>,
    trace_dropped: AtomicU64,
    /// Guided-model hot-swaps performed by the adaptive model manager.
    model_swaps: AtomicU64,
    /// Circuit-breaker trips (Closed/Half-Open → Open).
    breaker_trips: AtomicU64,
    /// Circuit-breaker re-closes (Half-Open → Closed).
    breaker_recloses: AtomicU64,
    /// Circuit-breaker half-open probes (Open → Half-Open).
    breaker_probes: AtomicU64,
    /// Model files rejected by integrity checks at load.
    breaker_model_rejected: AtomicU64,
    /// Breaker position after the latest transition
    /// ([`crate::breaker::BreakerState::code`]).
    breaker_state: AtomicU64,
    /// Adapt guardian panics caught and restarted.
    guardian_restarts: AtomicU64,
    /// Registered model-drift tracker (cold: touched only at
    /// registration and snapshot time, never on the hot path). In
    /// adaptive mode the manager re-attaches the new epoch's tracker on
    /// every swap, so the snapshot always reports the live generation.
    drift: Mutex<Option<Arc<DriftTracker>>>,
    /// Commit-clock statistics for the run, set by the STM owner after
    /// the run (cold; never touched on the hot path).
    clock_stats: Mutex<Option<ClockStats>>,
    /// Thread-placement plan summary, set by the harness (cold).
    placement: Mutex<Option<PlacementStats>>,
    /// Merged conflict-provenance stats, set by the harness after the
    /// run quiesces (cold; the hot record path lives in
    /// [`crate::contention::ContentionTracker`], not here).
    contention: Mutex<Option<ContentionStats>>,
}

/// One clock shard's per-run statistics (sharded commit clock).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardClockStats {
    /// Shard id.
    pub shard: u16,
    /// Stamps this shard's clock word returned during the run.
    pub advances: u64,
    /// Shard epoch at run start.
    pub epoch_start: u64,
    /// Shard epoch at run end. Every advance raises the epoch by at
    /// least one, so `epoch_end - epoch_start >= advances` — the
    /// analyzer's per-shard monotonicity witness.
    pub epoch_end: u64,
    /// Transactions that committed through this shard (including
    /// read-only commits, which stamp no version but still partition).
    pub commits: u64,
}

/// Per-run commit-clock statistics, exported as the `gstm_clock_*`
/// Prometheus families.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClockStats {
    /// Whether the run used the sharded clock.
    pub sharded: bool,
    /// Global-clock advances during the run (global mode; 0 in sharded
    /// mode, whose committers never touch the global counter).
    pub global_advances: u64,
    /// Per-shard rows (empty in global mode). Only shards that saw any
    /// activity are listed.
    pub shards: Vec<ShardClockStats>,
}

impl ClockStats {
    /// The mode as a flag spelling.
    pub fn mode(&self) -> &'static str {
        if self.sharded {
            "sharded"
        } else {
            "global"
        }
    }

    /// Total commits across all shard rows.
    pub fn shard_commits_total(&self) -> u64 {
        self.shards.iter().map(|s| s.commits).sum()
    }
}

/// A placement plan summarized for export (`gstm_placement_*` families).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// [`crate::placement::PinPolicy::code`] of the policy in force.
    pub policy: u8,
    /// Number of conflict clusters in the plan.
    pub clusters: u64,
    /// Threads the plan pins to a core.
    pub pinned_threads: u64,
    /// `(thread, shard)` assignments.
    pub thread_shard: Vec<(u16, u16)>,
    /// `(thread, core)` assignments (pinned threads only).
    pub thread_core: Vec<(u16, u16)>,
}

impl PlacementStats {
    /// Summarize a [`crate::placement::PlacementPlan`].
    pub fn from_plan(plan: &crate::placement::PlacementPlan) -> Self {
        use crate::ids::ThreadId;
        let threads = plan.threads();
        PlacementStats {
            policy: plan.policy().code(),
            clusters: plan.clusters().len() as u64,
            pinned_threads: plan.pinned_count() as u64,
            thread_shard: (0..threads as u16)
                .filter_map(|t| plan.shard_of(ThreadId(t)).map(|s| (t, s)))
                .collect(),
            thread_core: (0..threads as u16)
                .filter_map(|t| plan.core_of(ThreadId(t)).map(|c| (t, c)))
                .collect(),
        }
    }
}

impl Telemetry {
    /// Telemetry with the default per-thread trace capacity
    /// ([`DEFAULT_TRACE_CAPACITY`] events per cell).
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Telemetry with `cap` trace events per thread cell (oldest events
    /// are overwritten beyond that). `cap == 0` disables tracing: only
    /// counters and histograms are kept.
    pub fn with_trace_capacity(cap: usize) -> Self {
        Telemetry {
            cells: (0..TELEMETRY_SHARDS).map(|_| CounterCell::default()).collect(),
            commit_ns: LatencyHistogram::new(),
            backoff_ns: LatencyHistogram::new(),
            gate_wait_ns: LatencyHistogram::new(),
            clock: Clock::new(),
            trace_cap: cap,
            trace_seq: AtomicU64::new(0),
            trace: (0..TELEMETRY_SHARDS).map(|_| TraceShard::default()).collect(),
            trace_dropped: AtomicU64::new(0),
            model_swaps: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_recloses: AtomicU64::new(0),
            breaker_probes: AtomicU64::new(0),
            breaker_model_rejected: AtomicU64::new(0),
            breaker_state: AtomicU64::new(0),
            guardian_restarts: AtomicU64::new(0),
            drift: Mutex::new(None),
            clock_stats: Mutex::new(None),
            placement: Mutex::new(None),
            contention: Mutex::new(None),
        }
    }

    /// Attach the run's commit-clock statistics (set by the STM owner
    /// after the run; snapshots expose them as `gstm_clock_*`).
    pub fn set_clock_stats(&self, stats: ClockStats) {
        *self.clock_stats.lock() = Some(stats);
    }

    /// Attach the run's placement-plan summary (set by the harness;
    /// snapshots expose it as `gstm_placement_*`).
    pub fn set_placement(&self, stats: PlacementStats) {
        *self.placement.lock() = Some(stats);
    }

    /// Attach the run's merged conflict-provenance stats (set by the
    /// harness from [`crate::contention::ContentionTracker::snapshot`]
    /// after the run joins; snapshots expose them as
    /// `gstm_contention_*`).
    pub fn set_contention(&self, stats: ContentionStats) {
        *self.contention.lock() = Some(stats);
    }

    /// Register a model-drift tracker so snapshots (and their Prometheus
    /// exposition, via the `gstm_model_*` families) carry its
    /// [`ModelDrift`] report. Pass the same `Arc` to
    /// [`crate::guidance::GuidedHook::with_observability`] so the hook
    /// feeds what the snapshot reads.
    pub fn attach_drift(&self, tracker: Arc<DriftTracker>) {
        *self.drift.lock() = Some(tracker);
    }

    /// The registered drift tracker, if any.
    pub fn drift_tracker(&self) -> Option<Arc<DriftTracker>> {
        self.drift.lock().clone()
    }

    /// Counters and histograms only — no event tracing.
    pub fn counters_only() -> Self {
        Self::with_trace_capacity(0)
    }

    /// Whether the tracer is active.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace_cap != 0
    }

    /// Nanoseconds since construction (TSC-based on x86_64).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    #[inline]
    fn cell(&self, who: Pair) -> &CounterCell {
        &self.cells[who.thread.index() & (TELEMETRY_SHARDS - 1)]
    }

    /// Record a committed attempt and its commit-protocol latency.
    #[inline]
    pub fn record_commit(&self, who: Pair, commit_ns: u64) {
        self.cell(who).commits.fetch_add(1, Ordering::Relaxed);
        self.commit_ns.record(commit_ns);
    }

    /// Record an aborted attempt.
    #[inline]
    pub fn record_abort(&self, who: Pair, cause: AbortCause) {
        self.cell(who).aborts[cause_index(cause)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record the abort-to-retry backoff latency preceding an attempt.
    #[inline]
    pub fn record_backoff(&self, _who: Pair, ns: u64) {
        self.backoff_ns.record(ns);
    }

    /// Record the time an attempt spent inside the guidance gate.
    #[inline]
    pub fn record_gate_wait(&self, _who: Pair, ns: u64) {
        self.gate_wait_ns.record(ns);
    }

    /// Record how a gate call resolved (invoked by the guided hook).
    #[inline]
    pub fn record_gate_outcome(&self, who: Pair, outcome: GateOutcome) {
        let cell = self.cell(who);
        let counter = match outcome {
            GateOutcome::Passed => &cell.gate_passed,
            GateOutcome::Waited => &cell.gate_waited,
            GateOutcome::Released => &cell.gate_released,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Append a trace event to the calling thread's ring (no-op when
    /// tracing is disabled). Timestamp and sequence number are assigned
    /// here.
    pub fn trace(&self, who: Pair, kind: TraceKind) {
        if self.trace_cap == 0 {
            return;
        }
        let ev = TraceEvent {
            seq: self.trace_seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: self.now_ns(),
            pair: who,
            kind,
        };
        let shard = &self.trace[who.thread.index() & (TELEMETRY_SHARDS - 1)];
        let mut ring = shard.ring.lock();
        if ring.buf.len() < self.trace_cap {
            ring.buf.push(ev);
        } else {
            let i = ring.next;
            ring.buf[i] = ev;
            ring.next = (i + 1) % self.trace_cap;
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All retained trace events, ordered by sequence number. Each
    /// shard's ring is copied under its own (uncontended) lock; sorting
    /// happens outside every lock.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in self.trace.iter() {
            let ring = shard.ring.lock();
            out.extend_from_slice(&ring.buf);
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// Trace events overwritten because a ring was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped.load(Ordering::Relaxed)
    }

    /// Record a guided-model hot-swap (invoked by the adaptive model
    /// manager, off the hot path): bumps `gstm_model_swaps_total` and —
    /// when tracing is on — emits a [`TraceKind::ModelSwap`] event
    /// attributed to the synthetic pair `<0,0>`.
    pub fn record_model_swap(&self, epoch: u32, verdict: crate::drift::DriftVerdict) {
        use crate::ids::{ThreadId, TxnId};
        self.model_swaps.fetch_add(1, Ordering::Relaxed);
        self.trace(
            Pair::new(TxnId(0), ThreadId(0)),
            TraceKind::ModelSwap { epoch, verdict: verdict.code() },
        );
    }

    /// Guided-model hot-swaps recorded so far.
    pub fn model_swaps(&self) -> u64 {
        self.model_swaps.load(Ordering::Relaxed)
    }

    /// Record a circuit-breaker state change (invoked by
    /// [`crate::breaker::Breaker`], off the hot path): bumps the
    /// matching `gstm_breaker_*` counter, tracks the position gauge, and
    /// — when tracing is on — emits a [`TraceKind::Breaker`] event
    /// attributed to the synthetic pair `<0,0>`.
    pub fn record_breaker_transition(&self, from: u8, to: u8, cause: u8) {
        use crate::ids::{ThreadId, TxnId};
        match to {
            1 => self.breaker_trips.fetch_add(1, Ordering::Relaxed),
            2 => self.breaker_probes.fetch_add(1, Ordering::Relaxed),
            _ => self.breaker_recloses.fetch_add(1, Ordering::Relaxed),
        };
        self.breaker_state.store(to as u64, Ordering::Relaxed);
        self.trace(
            Pair::new(TxnId(0), ThreadId(0)),
            TraceKind::Breaker { from, to, cause },
        );
    }

    /// Record a model file rejected by the integrity checks at load.
    pub fn record_model_rejected(&self) {
        self.breaker_model_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an adapt-guardian panic that was caught and restarted.
    pub fn record_guardian_restart(&self) {
        self.guardian_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Breaker trips recorded so far.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips.load(Ordering::Relaxed)
    }

    /// Guardian restarts recorded so far.
    pub fn guardian_restarts(&self) -> u64 {
        self.guardian_restarts.load(Ordering::Relaxed)
    }

    /// Aggregate the per-thread cells and histograms into a snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot {
            commit_ns: self.commit_ns.snapshot(),
            backoff_ns: self.backoff_ns.snapshot(),
            gate_wait_ns: self.gate_wait_ns.snapshot(),
            trace_dropped: self.trace_dropped(),
            model_swaps: self.model_swaps(),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_recloses: self.breaker_recloses.load(Ordering::Relaxed),
            breaker_probes: self.breaker_probes.load(Ordering::Relaxed),
            breaker_model_rejected: self.breaker_model_rejected.load(Ordering::Relaxed),
            breaker_state: self.breaker_state.load(Ordering::Relaxed) as u8,
            guardian_restarts: self.guardian_restarts.load(Ordering::Relaxed),
            model_drift: self.drift.lock().as_ref().map(|d| d.report()),
            clock: self.clock_stats.lock().clone(),
            placement: self.placement.lock().clone(),
            contention: self.contention.lock().clone(),
            ..Default::default()
        };
        for (i, cell) in self.cells.iter().enumerate() {
            let commits = cell.commits.load(Ordering::Relaxed);
            let mut aborts = [0u64; 6];
            for (a, c) in aborts.iter_mut().zip(&cell.aborts) {
                *a = c.load(Ordering::Relaxed);
            }
            let passed = cell.gate_passed.load(Ordering::Relaxed);
            let waited = cell.gate_waited.load(Ordering::Relaxed);
            let released = cell.gate_released.load(Ordering::Relaxed);
            let aborts_total: u64 = aborts.iter().sum();
            snap.commits += commits;
            for (t, a) in snap.aborts.iter_mut().zip(&aborts) {
                *t += a;
            }
            snap.gate_passed += passed;
            snap.gate_waited += waited;
            snap.gate_released += released;
            if commits + aborts_total + passed + waited + released != 0 {
                snap.per_thread.push(ThreadCounters {
                    cell: i,
                    commits,
                    aborts,
                    gate_passed: passed,
                    gate_waited: waited,
                    gate_released: released,
                });
            }
        }
        snap
    }

    /// Prometheus text exposition of the current snapshot.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// JSONL export of the retained trace (one event per line).
    pub fn export_jsonl(&self) -> String {
        export_jsonl(&self.trace_events())
    }

    /// chrome://tracing JSON export of the retained trace.
    pub fn export_chrome_trace(&self) -> String {
        export_chrome_trace(&self.trace_events())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// Counters of one (nonempty) per-thread cell, as captured by
/// [`Telemetry::snapshot`]. `cell` is the cell index — equal to the
/// thread id for the first [`TELEMETRY_SHARDS`] threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadCounters {
    /// Cell index (thread id modulo [`TELEMETRY_SHARDS`]).
    pub cell: usize,
    /// Committed attempts.
    pub commits: u64,
    /// Aborted attempts by cause (indexed per [`ABORT_CAUSE_NAMES`]).
    pub aborts: [u64; 6],
    /// Gate calls that passed immediately.
    pub gate_passed: u64,
    /// Gate calls that waited before passing.
    pub gate_waited: u64,
    /// Gate calls released by the progress escape.
    pub gate_released: u64,
}

impl ThreadCounters {
    /// Total aborted attempts in this cell.
    pub fn aborts_total(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Total gate calls in this cell.
    pub fn gate_total(&self) -> u64 {
        self.gate_passed + self.gate_waited + self.gate_released
    }
}

/// A point-in-time aggregate of everything the telemetry recorded.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Committed attempts across all threads.
    pub commits: u64,
    /// Aborted attempts by cause (indexed per [`ABORT_CAUSE_NAMES`]).
    pub aborts: [u64; 6],
    /// Gate calls that passed immediately.
    pub gate_passed: u64,
    /// Gate calls that waited before passing.
    pub gate_waited: u64,
    /// Gate calls released by the progress escape.
    pub gate_released: u64,
    /// Commit-protocol latency histogram (ns).
    pub commit_ns: HistogramSnapshot,
    /// Abort-to-retry backoff histogram (ns).
    pub backoff_ns: HistogramSnapshot,
    /// Gate wait-time histogram (ns).
    pub gate_wait_ns: HistogramSnapshot,
    /// Nonempty per-thread cells.
    pub per_thread: Vec<ThreadCounters>,
    /// Trace events lost to ring overwrites.
    pub trace_dropped: u64,
    /// Guided-model hot-swaps (adaptive mode; 0 with a fixed model).
    pub model_swaps: u64,
    /// Circuit-breaker trips (Closed/Half-Open → Open).
    pub breaker_trips: u64,
    /// Circuit-breaker re-closes (Half-Open → Closed).
    pub breaker_recloses: u64,
    /// Circuit-breaker half-open probes (Open → Half-Open).
    pub breaker_probes: u64,
    /// Model files rejected by integrity checks at load.
    pub breaker_model_rejected: u64,
    /// Breaker position after the latest transition (0 closed, 1 open,
    /// 2 half-open).
    pub breaker_state: u8,
    /// Adapt-guardian panics caught and restarted.
    pub guardian_restarts: u64,
    /// Model-drift report, when a [`DriftTracker`] is attached.
    pub model_drift: Option<ModelDrift>,
    /// Commit-clock statistics, when the STM owner set them.
    pub clock: Option<ClockStats>,
    /// Placement-plan summary, when the harness set it.
    pub placement: Option<PlacementStats>,
    /// Conflict-provenance stats, when the harness attached a
    /// [`crate::contention::ContentionTracker`] to the run.
    pub contention: Option<ContentionStats>,
}

impl TelemetrySnapshot {
    /// Total aborted attempts.
    pub fn aborts_total(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Explicit user retries (the `explicit` abort cause).
    pub fn explicit_retries(&self) -> u64 {
        self.aborts[5]
    }

    /// Total gate calls (`passed + waited + released`).
    pub fn gate_total(&self) -> u64 {
        self.gate_passed + self.gate_waited + self.gate_released
    }

    /// Fold `other` into `self`, treating the pair as one logical run:
    /// counters and histograms add exactly; per-thread cells merge by
    /// cell index; point-in-time fields (breaker position, drift, clock,
    /// placement, contention) take `other`'s when present, since `other`
    /// is the newer snapshot. This is how the ops plane maintains one
    /// cumulative view across the harness's per-run collectors.
    pub fn absorb(&mut self, other: &TelemetrySnapshot) {
        self.commits += other.commits;
        for (a, b) in self.aborts.iter_mut().zip(&other.aborts) {
            *a += b;
        }
        self.gate_passed += other.gate_passed;
        self.gate_waited += other.gate_waited;
        self.gate_released += other.gate_released;
        self.commit_ns.absorb(&other.commit_ns);
        self.backoff_ns.absorb(&other.backoff_ns);
        self.gate_wait_ns.absorb(&other.gate_wait_ns);
        for tc in &other.per_thread {
            match self.per_thread.iter_mut().find(|m| m.cell == tc.cell) {
                Some(m) => {
                    m.commits += tc.commits;
                    for (a, b) in m.aborts.iter_mut().zip(&tc.aborts) {
                        *a += b;
                    }
                    m.gate_passed += tc.gate_passed;
                    m.gate_waited += tc.gate_waited;
                    m.gate_released += tc.gate_released;
                }
                None => self.per_thread.push(tc.clone()),
            }
        }
        self.per_thread.sort_by_key(|t| t.cell);
        self.trace_dropped += other.trace_dropped;
        self.model_swaps += other.model_swaps;
        self.breaker_trips += other.breaker_trips;
        self.breaker_recloses += other.breaker_recloses;
        self.breaker_probes += other.breaker_probes;
        self.breaker_model_rejected += other.breaker_model_rejected;
        self.breaker_state = other.breaker_state;
        self.guardian_restarts += other.guardian_restarts;
        if other.model_drift.is_some() {
            self.model_drift = other.model_drift.clone();
        }
        if other.clock.is_some() {
            self.clock = other.clock.clone();
        }
        if other.placement.is_some() {
            self.placement = other.placement.clone();
        }
        if other.contention.is_some() {
            self.contention = other.contention.clone();
        }
    }

    /// Render the snapshot in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Build-info stamp first: consumers check the schema label before
        // trusting any family below it.
        let _ = writeln!(out, "# TYPE gstm_build_info gauge");
        let _ = writeln!(
            out,
            "gstm_build_info{{schema=\"{SCHEMA_VERSION}\",version=\"{BUILD_VERSION}\"}} 1"
        );
        let _ = writeln!(out, "# TYPE gstm_commits_total counter");
        let _ = writeln!(out, "gstm_commits_total {}", self.commits);
        let _ = writeln!(out, "# TYPE gstm_aborts_total counter");
        for (name, v) in ABORT_CAUSE_NAMES.iter().zip(&self.aborts) {
            let _ = writeln!(out, "gstm_aborts_total{{cause=\"{name}\"}} {v}");
        }
        let _ = writeln!(out, "# TYPE gstm_gate_outcomes_total counter");
        for (name, v) in [
            ("passed", self.gate_passed),
            ("waited", self.gate_waited),
            ("released", self.gate_released),
        ] {
            let _ = writeln!(out, "gstm_gate_outcomes_total{{outcome=\"{name}\"}} {v}");
        }
        let _ = writeln!(out, "# TYPE gstm_trace_dropped_total counter");
        let _ = writeln!(out, "gstm_trace_dropped_total {}", self.trace_dropped);
        // Emitted unconditionally (0 for fixed-model runs) so dashboards
        // and the analyzer can rely on the family existing.
        let _ = writeln!(out, "# TYPE gstm_model_swaps_total counter");
        let _ = writeln!(out, "gstm_model_swaps_total {}", self.model_swaps);
        // Breaker/degradation families are likewise unconditional: a
        // clean run exports explicit zeros, so "no degradation" is
        // distinguishable from "artifacts predate the breaker".
        let _ = writeln!(out, "# TYPE gstm_breaker_tripped_total counter");
        let _ = writeln!(out, "gstm_breaker_tripped_total {}", self.breaker_trips);
        let _ = writeln!(out, "# TYPE gstm_breaker_reclosed_total counter");
        let _ = writeln!(out, "gstm_breaker_reclosed_total {}", self.breaker_recloses);
        let _ = writeln!(out, "# TYPE gstm_breaker_half_open_total counter");
        let _ = writeln!(out, "gstm_breaker_half_open_total {}", self.breaker_probes);
        let _ = writeln!(out, "# TYPE gstm_breaker_model_rejected_total counter");
        let _ = writeln!(
            out,
            "gstm_breaker_model_rejected_total {}",
            self.breaker_model_rejected
        );
        // 0 closed, 1 open, 2 half-open.
        let _ = writeln!(out, "# TYPE gstm_breaker_state gauge");
        let _ = writeln!(out, "gstm_breaker_state {}", self.breaker_state);
        let _ = writeln!(out, "# TYPE gstm_guardian_restarts_total counter");
        let _ = writeln!(out, "gstm_guardian_restarts_total {}", self.guardian_restarts);
        // Clock families are emitted only when the STM owner attached
        // stats — their absence means "artifacts predate the sharded
        // clock", which the analyzer treats as "checks not applicable".
        if let Some(c) = &self.clock {
            // 0 global, 1 sharded.
            let _ = writeln!(out, "# TYPE gstm_clock_mode gauge");
            let _ = writeln!(out, "gstm_clock_mode {}", u8::from(c.sharded));
            let _ = writeln!(out, "# TYPE gstm_clock_global_advances_total counter");
            let _ = writeln!(out, "gstm_clock_global_advances_total {}", c.global_advances);
            if !c.shards.is_empty() {
                let _ = writeln!(out, "# TYPE gstm_clock_shard_advances_total counter");
                for s in &c.shards {
                    let _ = writeln!(
                        out,
                        "gstm_clock_shard_advances_total{{shard=\"{}\"}} {}",
                        s.shard, s.advances
                    );
                }
                let _ = writeln!(out, "# TYPE gstm_clock_shard_epoch gauge");
                for s in &c.shards {
                    let _ = writeln!(
                        out,
                        "gstm_clock_shard_epoch{{shard=\"{}\",point=\"start\"}} {}",
                        s.shard, s.epoch_start
                    );
                    let _ = writeln!(
                        out,
                        "gstm_clock_shard_epoch{{shard=\"{}\",point=\"end\"}} {}",
                        s.shard, s.epoch_end
                    );
                }
                let _ = writeln!(out, "# TYPE gstm_clock_shard_commits_total counter");
                for s in &c.shards {
                    let _ = writeln!(
                        out,
                        "gstm_clock_shard_commits_total{{shard=\"{}\"}} {}",
                        s.shard, s.commits
                    );
                }
            }
        }
        if let Some(p) = &self.placement {
            let _ = writeln!(out, "# TYPE gstm_placement_policy gauge");
            let _ = writeln!(out, "gstm_placement_policy {}", p.policy);
            let _ = writeln!(out, "# TYPE gstm_placement_clusters gauge");
            let _ = writeln!(out, "gstm_placement_clusters {}", p.clusters);
            let _ = writeln!(out, "# TYPE gstm_placement_pinned_threads gauge");
            let _ = writeln!(out, "gstm_placement_pinned_threads {}", p.pinned_threads);
            let _ = writeln!(out, "# TYPE gstm_placement_thread_shard gauge");
            for &(t, s) in &p.thread_shard {
                let _ = writeln!(out, "gstm_placement_thread_shard{{thread=\"{t}\"}} {s}");
            }
            let _ = writeln!(out, "# TYPE gstm_placement_thread_core gauge");
            for &(t, c) in &p.thread_core {
                let _ = writeln!(out, "gstm_placement_thread_core{{thread=\"{t}\"}} {c}");
            }
        }
        // Contention families are emitted only when the harness attached
        // a tracker — absence means "artifacts predate conflict
        // provenance" (or the run disabled it), which the analyzer
        // treats as "checks not applicable".
        if let Some(ct) = &self.contention {
            let _ = writeln!(out, "# TYPE gstm_contention_attributed_total counter");
            let _ = writeln!(out, "gstm_contention_attributed_total {}", ct.attributed);
            let _ = writeln!(out, "# TYPE gstm_contention_unattributed_total counter");
            let _ = writeln!(out, "gstm_contention_unattributed_total {}", ct.unattributed);
            let _ = writeln!(out, "# TYPE gstm_contention_residual_total counter");
            let _ = writeln!(out, "gstm_contention_residual_total {}", ct.residual);
            let _ = writeln!(out, "# TYPE gstm_contention_owner_unknown_total counter");
            let _ = writeln!(out, "gstm_contention_owner_unknown_total {}", ct.owner_unknown);
            let _ = writeln!(out, "# TYPE gstm_contention_sketch_replacements_total counter");
            let _ = writeln!(
                out,
                "gstm_contention_sketch_replacements_total {}",
                ct.replacements
            );
            let _ = writeln!(out, "# TYPE gstm_contention_sketch_slots gauge");
            let _ = writeln!(
                out,
                "gstm_contention_sketch_slots{{state=\"occupied\"}} {}",
                ct.occupied
            );
            let _ = writeln!(
                out,
                "gstm_contention_sketch_slots{{state=\"capacity\"}} {}",
                ct.capacity
            );
            if !ct.top.is_empty() {
                let _ = writeln!(out, "# TYPE gstm_contention_addr_aborts_total counter");
                for (rank, h) in ct.top.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "gstm_contention_addr_aborts_total{{rank=\"{rank}\",addr=\"{:#x}\"}} {}",
                        h.addr, h.count
                    );
                }
                let _ = writeln!(out, "# TYPE gstm_contention_addr_error gauge");
                for (rank, h) in ct.top.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "gstm_contention_addr_error{{rank=\"{rank}\",addr=\"{:#x}\"}} {}",
                        h.addr, h.err
                    );
                }
            }
            if !ct.pairs.is_empty() {
                let _ = writeln!(out, "# TYPE gstm_contention_pair_aborts_total counter");
                for p in &ct.pairs {
                    let _ = writeln!(
                        out,
                        "gstm_contention_pair_aborts_total{{victim=\"{}\",owner=\"{}\"}} {}",
                        p.victim, p.owner, p.count
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE gstm_thread_commits_total counter");
        for t in &self.per_thread {
            let _ = writeln!(out, "gstm_thread_commits_total{{thread=\"{}\"}} {}", t.cell, t.commits);
        }
        let _ = writeln!(out, "# TYPE gstm_thread_aborts_total counter");
        for t in &self.per_thread {
            let _ = writeln!(
                out,
                "gstm_thread_aborts_total{{thread=\"{}\"}} {}",
                t.cell,
                t.aborts_total()
            );
        }
        // Per-thread cause/outcome breakdowns: the inputs for per-thread
        // variance analysis, scrapeable rather than aggregate-only. Only
        // populated series are emitted to keep the exposition compact.
        let _ = writeln!(out, "# TYPE gstm_thread_abort_causes_total counter");
        for t in &self.per_thread {
            for (name, &v) in ABORT_CAUSE_NAMES.iter().zip(&t.aborts) {
                if v != 0 {
                    let _ = writeln!(
                        out,
                        "gstm_thread_abort_causes_total{{thread=\"{}\",cause=\"{name}\"}} {v}",
                        t.cell
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE gstm_thread_gate_outcomes_total counter");
        for t in &self.per_thread {
            for (name, v) in [
                ("passed", t.gate_passed),
                ("waited", t.gate_waited),
                ("released", t.gate_released),
            ] {
                if v != 0 {
                    let _ = writeln!(
                        out,
                        "gstm_thread_gate_outcomes_total{{thread=\"{}\",outcome=\"{name}\"}} {v}",
                        t.cell
                    );
                }
            }
        }
        if let Some(d) = &self.model_drift {
            let _ = writeln!(out, "# TYPE gstm_model_transitions_total counter");
            for (edge, v) in [
                ("modeled", d.on_edge),
                ("unmodeled", d.off_edge),
                ("to_unknown", d.to_unknown),
                ("from_unknown", d.from_unknown),
            ] {
                let _ = writeln!(out, "gstm_model_transitions_total{{edge=\"{edge}\"}} {v}");
            }
            let _ = writeln!(out, "# TYPE gstm_model_off_model_pct gauge");
            let _ = writeln!(out, "gstm_model_off_model_pct {}", d.off_model_pct);
            let _ = writeln!(out, "# TYPE gstm_model_kl_divergence_nats gauge");
            let _ = writeln!(
                out,
                "gstm_model_kl_divergence_nats{{stat=\"mean\"}} {}",
                d.mean_kl_nats
            );
            let _ = writeln!(
                out,
                "gstm_model_kl_divergence_nats{{stat=\"max\"}} {}",
                d.max_kl_nats
            );
            let _ = writeln!(out, "# TYPE gstm_model_guidance_metric_pct gauge");
            let _ = writeln!(
                out,
                "gstm_model_guidance_metric_pct{{source=\"profiled\"}} {}",
                d.profiled_metric_pct
            );
            if let Some(obs) = d.observed_metric_pct {
                let _ = writeln!(
                    out,
                    "gstm_model_guidance_metric_pct{{source=\"observed\"}} {obs}"
                );
            }
            let _ = writeln!(out, "# TYPE gstm_model_states gauge");
            let _ = writeln!(out, "gstm_model_states{{kind=\"modeled\"}} {}", d.modeled_states);
            let _ = writeln!(out, "gstm_model_states{{kind=\"observed\"}} {}", d.observed_states);
            // 0 insufficient, 1 fresh, 2 drifting, 3 stale.
            let _ = writeln!(out, "# TYPE gstm_model_staleness gauge");
            let _ = writeln!(out, "gstm_model_staleness {}", d.verdict.code());
        }
        prom_histogram(&mut out, "gstm_commit_duration_ns", &self.commit_ns);
        prom_histogram(&mut out, "gstm_abort_backoff_ns", &self.backoff_ns);
        prom_histogram(&mut out, "gstm_gate_wait_ns", &self.gate_wait_ns);
        out
    }
}

/// Emit one histogram in Prometheus text format (cumulative `le` buckets
/// up to the highest populated one, then `+Inf`, `_sum`, `_count`).
fn prom_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} histogram");
    let last = h
        .buckets
        .iter()
        .rposition(|&b| b != 0)
        .map(|i| (i + 1).min(NUM_BUCKETS - 1))
        .unwrap_or(0);
    let mut cum = 0u64;
    for (i, &b) in h.buckets.iter().enumerate().take(last + 1) {
        cum += b;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cum}",
            LatencyHistogram::bucket_range(i).1
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

// ---------------------------------------------------------------------------
// JSONL export / import
// ---------------------------------------------------------------------------

fn cause_name(cause: AbortCause) -> &'static str {
    ABORT_CAUSE_NAMES[cause_index(cause)]
}

/// Serialize trace events as JSONL: a schema-stamped meta line followed
/// by one self-contained JSON object per event, in input order.
pub fn export_jsonl(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"kind\":\"meta\",\"schema\":{SCHEMA_VERSION},\"version\":\"{BUILD_VERSION}\"}}"
    );
    for ev in events {
        let _ = write!(
            out,
            "{{\"seq\":{},\"ts_ns\":{},\"txn\":{},\"thread\":{}",
            ev.seq, ev.ts_ns, ev.pair.txn.0, ev.pair.thread.0
        );
        match ev.kind {
            TraceKind::Begin => {
                let _ = write!(out, ",\"kind\":\"begin\"");
            }
            TraceKind::GateWait { wait_ns } => {
                let _ = write!(out, ",\"kind\":\"gate_wait\",\"wait_ns\":{wait_ns}");
            }
            TraceKind::Abort { cause, addr } => {
                let _ = write!(out, ",\"kind\":\"abort\",\"cause\":\"{}\"", cause_name(cause));
                if let Some(t) = cause.conflicting_thread() {
                    let _ = write!(out, ",\"conflict\":{}", t.0);
                }
                // Optional field (like "conflict"): pre-PR7 artifacts
                // lack it and parse_jsonl defaults it to 0.
                if addr != 0 {
                    let _ = write!(out, ",\"addr\":{addr}");
                }
            }
            TraceKind::Commit { commit_ns, writes } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"commit\",\"commit_ns\":{commit_ns},\"writes\":{writes}"
                );
            }
            TraceKind::StateTransition { from, to } => {
                let _ = write!(out, ",\"kind\":\"state_transition\",\"from\":{from},\"to\":{to}");
            }
            TraceKind::ModelSwap { epoch, verdict } => {
                let _ = write!(out, ",\"kind\":\"model_swap\",\"epoch\":{epoch},\"verdict\":{verdict}");
            }
            TraceKind::Breaker { from, to, cause } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"breaker\",\"from\":{from},\"to\":{to},\"cause\":{cause}"
                );
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Extract the raw value text following `"key":` in a single-line, flat
/// JSON object (the shape [`export_jsonl`] emits).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .find(|&(i, c)| (c == ',' || c == '}') && !in_string(rest, i))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Whether byte offset `i` of `s` falls inside a double-quoted string.
fn in_string(s: &str, i: usize) -> bool {
    s[..i].bytes().filter(|&b| b == b'"').count() % 2 == 1
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_field(line, key)?.parse().ok()
}

fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    json_field(line, key)?.strip_prefix('"')?.strip_suffix('"')
}

/// Parse JSONL produced by [`export_jsonl`] back into events, preserving
/// order. Returns a description of the first malformed line on error.
pub fn parse_jsonl(s: &str) -> Result<Vec<TraceEvent>, String> {
    use crate::ids::{ThreadId, TxnId};
    let mut out = Vec::new();
    for (n, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", n + 1);
        // Schema-stamped meta line (absent in pre-PR8 artifacts, which is
        // tolerated; a *mismatched* stamp is a hard error so a newer or
        // older exporter is never silently misparsed).
        if json_str(line, "kind") == Some("meta") {
            match json_u64(line, "schema") {
                Some(s) if s == u64::from(SCHEMA_VERSION) => continue,
                Some(s) => {
                    return Err(format!(
                        "line {}: artifact schema {s} but this build reads schema \
                         {SCHEMA_VERSION}; re-export with a matching gstm version",
                        n + 1
                    ))
                }
                None => return Err(err("meta line missing schema")),
            }
        }
        let seq = json_u64(line, "seq").ok_or_else(|| err("missing seq"))?;
        let ts_ns = json_u64(line, "ts_ns").ok_or_else(|| err("missing ts_ns"))?;
        let txn = json_u64(line, "txn").ok_or_else(|| err("missing txn"))? as u16;
        let thread = json_u64(line, "thread").ok_or_else(|| err("missing thread"))? as u16;
        let kind_str = json_str(line, "kind").ok_or_else(|| err("missing kind"))?;
        let conflict = json_u64(line, "conflict").map(|t| ThreadId(t as u16));
        let kind = match kind_str {
            "begin" => TraceKind::Begin,
            "gate_wait" => TraceKind::GateWait {
                wait_ns: json_u64(line, "wait_ns").ok_or_else(|| err("missing wait_ns"))?,
            },
            "abort" => {
                let cause = match json_str(line, "cause").ok_or_else(|| err("missing cause"))? {
                    "read_locked" => AbortCause::ReadLocked { owner: conflict },
                    "read_version" => AbortCause::ReadVersion,
                    "commit_lock_busy" => AbortCause::CommitLockBusy { owner: conflict },
                    "validation" => AbortCause::Validation,
                    "aborted_by_writer" => AbortCause::AbortedByWriter { writer: conflict },
                    "explicit" => AbortCause::Explicit,
                    _ => return Err(err("unknown cause")),
                };
                // Tolerant: pre-PR7 artifacts have no "addr" field.
                TraceKind::Abort {
                    cause,
                    addr: json_u64(line, "addr").unwrap_or(0) as usize,
                }
            }
            "commit" => TraceKind::Commit {
                commit_ns: json_u64(line, "commit_ns").ok_or_else(|| err("missing commit_ns"))?,
                writes: json_u64(line, "writes").ok_or_else(|| err("missing writes"))? as u32,
            },
            "state_transition" => TraceKind::StateTransition {
                from: json_u64(line, "from").ok_or_else(|| err("missing from"))? as u32,
                to: json_u64(line, "to").ok_or_else(|| err("missing to"))? as u32,
            },
            "model_swap" => TraceKind::ModelSwap {
                epoch: json_u64(line, "epoch").ok_or_else(|| err("missing epoch"))? as u32,
                verdict: json_u64(line, "verdict").ok_or_else(|| err("missing verdict"))? as u8,
            },
            "breaker" => TraceKind::Breaker {
                from: json_u64(line, "from").ok_or_else(|| err("missing from"))? as u8,
                to: json_u64(line, "to").ok_or_else(|| err("missing to"))? as u8,
                cause: json_u64(line, "cause").ok_or_else(|| err("missing cause"))? as u8,
            },
            _ => return Err(err("unknown kind")),
        };
        out.push(TraceEvent {
            seq,
            ts_ns,
            pair: Pair::new(TxnId(txn), ThreadId(thread)),
            kind,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// chrome://tracing export
// ---------------------------------------------------------------------------

/// Synthetic `tid` carrying the TSA state-residency timeline in the
/// chrome trace (distinct from any real thread id, which are u16).
pub const TSA_TRACK_TID: u32 = 0x1_0000;

fn fmt_us(ns: u64) -> String {
    // chrome trace `ts`/`dur` are microseconds; keep ns resolution with
    // three decimals.
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn state_name(id: u32) -> String {
    if id == UNKNOWN_STATE {
        "unknown".to_string()
    } else {
        format!("S{id}")
    }
}

/// Serialize trace events as a chrome://tracing `trace_event` JSON
/// document (openable in Perfetto / chrome://tracing).
///
/// Mapping: commits and gate waits become duration (`"X"`) slices ending
/// at their record timestamp; begins and aborts become instants (`"i"`);
/// [`TraceKind::StateTransition`] events additionally synthesize a
/// state-residency timeline of `"X"` slices on the dedicated
/// [`TSA_TRACK_TID`] track — each slice spans from one transition to the
/// next and is named after the state the system resided in.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut entries: Vec<String> = Vec::new();
    entries.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{TSA_TRACK_TID},\
         \"args\":{{\"name\":\"TSA state\"}}}}"
    ));
    let mut transitions: Vec<&TraceEvent> = Vec::new();
    let mut max_ts = 0u64;
    for ev in events {
        max_ts = max_ts.max(ev.ts_ns);
        let tid = ev.pair.thread.0;
        let txn = ev.pair.txn.0;
        let mut e = String::new();
        match ev.kind {
            TraceKind::Begin => {
                let _ = write!(
                    e,
                    "{{\"name\":\"begin:t{txn}\",\"cat\":\"tx\",\"ph\":\"i\",\"ts\":{},\
                     \"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"seq\":{}}}}}",
                    fmt_us(ev.ts_ns),
                    ev.seq
                );
            }
            TraceKind::GateWait { wait_ns } => {
                let _ = write!(
                    e,
                    "{{\"name\":\"gate\",\"cat\":\"gate\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":0,\"tid\":{tid},\"args\":{{\"seq\":{}}}}}",
                    fmt_us(ev.ts_ns.saturating_sub(wait_ns)),
                    fmt_us(wait_ns),
                    ev.seq
                );
            }
            TraceKind::Abort { cause, addr } => {
                let culprit = if addr != 0 {
                    format!(",\"addr\":\"{addr:#x}\"")
                } else {
                    String::new()
                };
                let _ = write!(
                    e,
                    "{{\"name\":\"abort:{}\",\"cat\":\"abort\",\"ph\":\"i\",\"ts\":{},\
                     \"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"seq\":{}{culprit}}}}}",
                    cause_name(cause),
                    fmt_us(ev.ts_ns),
                    ev.seq
                );
            }
            TraceKind::Commit { commit_ns, writes } => {
                let _ = write!(
                    e,
                    "{{\"name\":\"commit:t{txn}\",\"cat\":\"tx\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"seq\":{},\"writes\":{writes}}}}}",
                    fmt_us(ev.ts_ns.saturating_sub(commit_ns)),
                    fmt_us(commit_ns),
                    ev.seq
                );
            }
            TraceKind::StateTransition { from, to } => {
                transitions.push(ev);
                let _ = write!(
                    e,
                    "{{\"name\":\"{}\",\"cat\":\"tsa\",\"ph\":\"i\",\"ts\":{},\
                     \"pid\":0,\"tid\":{tid},\"s\":\"p\",\
                     \"args\":{{\"seq\":{},\"from\":\"{}\"}}}}",
                    state_name(to),
                    fmt_us(ev.ts_ns),
                    ev.seq,
                    state_name(from)
                );
            }
            TraceKind::ModelSwap { epoch, verdict } => {
                // Rendered on the TSA track: the swap punctuates the
                // state-residency timeline it invalidates.
                let _ = write!(
                    e,
                    "{{\"name\":\"model_swap:e{epoch}\",\"cat\":\"tsa\",\"ph\":\"i\",\"ts\":{},\
                     \"pid\":0,\"tid\":{TSA_TRACK_TID},\"s\":\"g\",\
                     \"args\":{{\"seq\":{},\"verdict\":{verdict}}}}}",
                    fmt_us(ev.ts_ns),
                    ev.seq
                );
            }
            TraceKind::Breaker { from, to, cause } => {
                // Also on the TSA track: a breaker flip changes how the
                // state timeline is being enforced.
                let _ = write!(
                    e,
                    "{{\"name\":\"breaker:{}->{}\",\"cat\":\"tsa\",\"ph\":\"i\",\"ts\":{},\
                     \"pid\":0,\"tid\":{TSA_TRACK_TID},\"s\":\"g\",\
                     \"args\":{{\"seq\":{},\"from\":{from},\"cause\":{cause}}}}}",
                    crate::breaker::BreakerState::from_code(from).label(),
                    crate::breaker::BreakerState::from_code(to).label(),
                    fmt_us(ev.ts_ns),
                    ev.seq
                );
            }
        }
        entries.push(e);
    }
    // Residency slices: state `to` holds from its transition until the
    // next one (or the end of the trace).
    transitions.sort_by_key(|e| e.ts_ns);
    for (i, tr) in transitions.iter().enumerate() {
        let (from, to) = match tr.kind {
            TraceKind::StateTransition { from, to } => (from, to),
            _ => unreachable!("transitions holds only state transitions"),
        };
        let end = transitions
            .get(i + 1)
            .map(|n| n.ts_ns)
            .unwrap_or(max_ts)
            .max(tr.ts_ns + 1);
        entries.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"tsa\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{TSA_TRACK_TID},\"args\":{{\"from\":\"{}\"}}}}",
            state_name(to),
            fmt_us(tr.ts_ns),
            fmt_us(end - tr.ts_ns),
            state_name(from)
        ));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Count the objects in a chrome trace's `traceEvents` array (a
/// structural sanity check used by tests and the harness validator).
pub fn chrome_trace_event_count(json: &str) -> Option<usize> {
    let start = json.find("\"traceEvents\":[")? + "\"traceEvents\":[".len();
    let body = &json[start..];
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut in_str = false;
    let mut prev_escape = false;
    for c in body.chars() {
        if in_str {
            if prev_escape {
                prev_escape = false;
            } else if c == '\\' {
                prev_escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    count += 1;
                }
                depth += 1;
            }
            '}' => {
                if depth == 0 {
                    return None; // unbalanced
                }
                depth -= 1;
            }
            ']' => {
                if depth == 0 {
                    return Some(count);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        // Exact power-of-2 boundaries start a new bucket; their
        // predecessors close the previous one.
        for k in 1..=62u32 {
            let v = 1u64 << k;
            assert_eq!(LatencyHistogram::bucket_index(v), k as usize + 1, "2^{k}");
            assert_eq!(LatencyHistogram::bucket_index(v - 1), k as usize, "2^{k}-1");
        }
        assert_eq!(LatencyHistogram::bucket_index(1u64 << 63), 64);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 64, "saturates");
    }

    #[test]
    fn bucket_ranges_partition_u64() {
        assert_eq!(LatencyHistogram::bucket_range(0), (0, 0));
        for i in 1..NUM_BUCKETS {
            let (lo, hi) = LatencyHistogram::bucket_range(i);
            let (_, prev_hi) = LatencyHistogram::bucket_range(i - 1);
            assert_eq!(lo, prev_hi + 1, "bucket {i} starts after bucket {}", i - 1);
            assert_eq!(LatencyHistogram::bucket_index(lo), i);
            assert_eq!(LatencyHistogram::bucket_index(hi), i);
        }
        assert_eq!(LatencyHistogram::bucket_range(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = LatencyHistogram::new();
        for v in [0, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[10], 1); // 1000 in [512, 1023]
        assert_eq!(s.buckets[64], 1); // u64::MAX
        assert!(s.mean() > 0.0);
        assert_eq!(s.quantile_upper_bound(0.5), 3);
    }

    #[test]
    fn counters_aggregate_across_cells() {
        let tel = Telemetry::counters_only();
        tel.record_commit(p(0, 0), 10);
        tel.record_commit(p(0, 1), 20);
        tel.record_abort(p(0, 1), AbortCause::Validation);
        tel.record_abort(p(0, 1), AbortCause::Explicit);
        tel.record_gate_outcome(p(0, 0), GateOutcome::Passed);
        tel.record_gate_outcome(p(0, 1), GateOutcome::Waited);
        tel.record_gate_outcome(p(0, 1), GateOutcome::Released);
        let s = tel.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.aborts_total(), 2);
        assert_eq!(s.aborts[cause_index(AbortCause::Validation)], 1);
        assert_eq!(s.explicit_retries(), 1);
        assert_eq!((s.gate_passed, s.gate_waited, s.gate_released), (1, 1, 1));
        assert_eq!(s.gate_total(), 3);
        assert_eq!(s.commit_ns.count, 2);
        assert_eq!(s.per_thread.len(), 2);
        assert_eq!(s.per_thread[1].aborts_total(), 2);
        assert_eq!(s.per_thread[1].gate_total(), 2);
    }

    #[test]
    fn aliased_threads_share_a_cell() {
        let tel = Telemetry::counters_only();
        tel.record_commit(p(0, 1), 5);
        tel.record_commit(p(0, 1 + TELEMETRY_SHARDS as u16), 5);
        let s = tel.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.per_thread.len(), 1, "aliases share cell 1");
        assert_eq!(s.per_thread[0].commits, 2);
    }

    #[test]
    fn clock_is_monotonic_nondecreasing() {
        let c = Clock::new();
        let mut prev = 0u64;
        for _ in 0..10_000 {
            let now = c.now_ns();
            assert!(now >= prev);
            prev = now;
        }
        assert!(prev > 0, "time advanced");
    }

    #[test]
    fn trace_ring_bounds_memory_and_keeps_newest() {
        let tel = Telemetry::with_trace_capacity(4);
        for i in 0..10u64 {
            tel.trace(p(0, 0), TraceKind::GateWait { wait_ns: i });
        }
        let events = tel.trace_events();
        assert_eq!(events.len(), 4, "ring capped");
        assert_eq!(tel.trace_dropped(), 6);
        // The newest four survive, in sequence order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let tel = Telemetry::counters_only();
        assert!(!tel.trace_enabled());
        tel.trace(p(0, 0), TraceKind::Begin);
        assert!(tel.trace_events().is_empty());
        assert_eq!(tel.trace_dropped(), 0);
    }

    #[test]
    fn trace_events_merge_shards_in_sequence_order() {
        let tel = std::sync::Arc::new(Telemetry::new());
        let mut handles = Vec::new();
        for th in 0..4u16 {
            let tel = std::sync::Arc::clone(&tel);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    tel.trace(p((i % 3) as u16, th), TraceKind::Begin);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = tel.trace_events();
        assert_eq!(events.len(), 200);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent { seq: 0, ts_ns: 100, pair: p(1, 2), kind: TraceKind::Begin },
            TraceEvent {
                seq: 1,
                ts_ns: 220,
                pair: p(1, 2),
                kind: TraceKind::GateWait { wait_ns: 120 },
            },
            TraceEvent {
                seq: 2,
                ts_ns: 300,
                pair: p(1, 2),
                kind: TraceKind::Abort {
                    cause: AbortCause::ReadLocked { owner: Some(ThreadId(7)) },
                    addr: 0xdead_b000,
                },
            },
            TraceEvent {
                seq: 3,
                ts_ns: 340,
                pair: p(0, 3),
                kind: TraceKind::Abort {
                    cause: AbortCause::CommitLockBusy { owner: None },
                    addr: 0,
                },
            },
            TraceEvent {
                seq: 4,
                ts_ns: 400,
                pair: p(1, 2),
                kind: TraceKind::Commit { commit_ns: 55, writes: 3 },
            },
            TraceEvent {
                seq: 5,
                ts_ns: 401,
                pair: p(1, 2),
                kind: TraceKind::StateTransition { from: UNKNOWN_STATE, to: 4 },
            },
            TraceEvent {
                seq: 6,
                ts_ns: 500,
                pair: p(0, 3),
                kind: TraceKind::StateTransition { from: 4, to: 9 },
            },
            TraceEvent {
                seq: 7,
                ts_ns: 550,
                pair: p(0, 0),
                kind: TraceKind::ModelSwap { epoch: 1, verdict: 3 },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let events = sample_events();
        let jsonl = export_jsonl(&events);
        // One schema-stamped meta line, then one line per event.
        assert_eq!(jsonl.lines().count(), events.len() + 1);
        assert!(jsonl.starts_with(&format!(
            "{{\"kind\":\"meta\",\"schema\":{SCHEMA_VERSION}"
        )));
        let parsed = parse_jsonl(&jsonl).expect("parses");
        assert_eq!(parsed, events, "count, ordering, and payloads survive");
    }

    #[test]
    fn jsonl_schema_stamp_is_enforced() {
        // A mismatched stamp is a hard, descriptive error...
        let err = parse_jsonl("{\"kind\":\"meta\",\"schema\":999}\n").unwrap_err();
        assert!(err.contains("schema 999"), "got: {err}");
        assert!(err.contains("re-export"), "got: {err}");
        // ...a matching stamp is skipped; a missing stamp (pre-PR8
        // artifact) is tolerated.
        let line = "{\"seq\":0,\"ts_ns\":1,\"txn\":0,\"thread\":0,\"kind\":\"begin\"}";
        let stamped = format!("{{\"kind\":\"meta\",\"schema\":{SCHEMA_VERSION}}}\n{line}");
        assert_eq!(parse_jsonl(&stamped).unwrap().len(), 1);
        assert_eq!(parse_jsonl(line).unwrap().len(), 1);
        assert!(parse_jsonl("{\"kind\":\"meta\"}").is_err());
    }

    #[test]
    fn jsonl_parses_pre_pr7_abort_lines_without_addr() {
        // Artifacts written before conflict provenance carry no "addr"
        // field; they must still parse, with addr defaulting to 0.
        let legacy = "{\"seq\":9,\"ts_ns\":77,\"txn\":1,\"thread\":2,\
                      \"kind\":\"abort\",\"cause\":\"read_locked\",\"conflict\":7}";
        let parsed = parse_jsonl(legacy).expect("legacy line parses");
        assert_eq!(
            parsed[0].kind,
            TraceKind::Abort {
                cause: AbortCause::ReadLocked { owner: Some(ThreadId(7)) },
                addr: 0,
            }
        );
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(parse_jsonl("{\"seq\":0}").is_err());
        assert!(parse_jsonl("{\"seq\":0,\"ts_ns\":1,\"txn\":0,\"thread\":0,\"kind\":\"nope\"}").is_err());
        assert!(parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let events = sample_events();
        let json = export_chrome_trace(&events);
        // metadata + one entry per event + one residency slice per
        // transition.
        let expected = 1 + events.len() + 2;
        assert_eq!(chrome_trace_event_count(&json), Some(expected));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("TSA state"));
        assert!(json.contains("\"name\":\"S4\""));
        assert!(json.contains("\"name\":\"unknown\"") || json.contains("\"from\":\"unknown\""));
        // Balanced braces overall.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn chrome_trace_of_empty_input_is_valid() {
        let json = export_chrome_trace(&[]);
        assert_eq!(chrome_trace_event_count(&json), Some(1), "metadata only");
    }

    #[test]
    fn snapshot_prometheus_exposition_contains_totals() {
        let tel = Telemetry::counters_only();
        tel.record_commit(p(0, 0), 128);
        tel.record_abort(p(0, 0), AbortCause::Validation);
        tel.record_gate_wait(p(0, 0), 64);
        tel.record_backoff(p(0, 0), 32);
        let prom = tel.render_prometheus();
        assert!(prom.contains("gstm_commits_total 1"));
        assert!(prom.contains("gstm_aborts_total{cause=\"validation\"} 1"));
        assert!(prom.contains("gstm_commit_duration_ns_count 1"));
        assert!(prom.contains("gstm_commit_duration_ns_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("gstm_gate_wait_ns_sum 64"));
        assert!(prom.contains("gstm_abort_backoff_ns_count 1"));
        assert!(prom.contains("gstm_thread_commits_total{thread=\"0\"} 1"));
        // The swap family is always present, 0 without an adaptive hook.
        assert!(prom.contains("gstm_model_swaps_total 0"));
    }

    #[test]
    fn model_swaps_flow_into_counter_trace_and_prometheus() {
        let tel = Telemetry::with_trace_capacity(16);
        tel.record_model_swap(1, crate::drift::DriftVerdict::Stale);
        tel.record_model_swap(2, crate::drift::DriftVerdict::Drifting);
        assert_eq!(tel.model_swaps(), 2);
        let snap = tel.snapshot();
        assert_eq!(snap.model_swaps, 2);
        assert!(snap.render_prometheus().contains("gstm_model_swaps_total 2"));
        let swaps: Vec<_> = tel
            .trace_events()
            .into_iter()
            .filter_map(|e| match e.kind {
                TraceKind::ModelSwap { epoch, verdict } => Some((epoch, verdict)),
                _ => None,
            })
            .collect();
        assert_eq!(swaps, vec![(1, 3), (2, 2)]);
        // Counters-only telemetry still counts swaps, just without events.
        let quiet = Telemetry::counters_only();
        quiet.record_model_swap(1, crate::drift::DriftVerdict::Stale);
        assert_eq!(quiet.model_swaps(), 1);
        assert!(quiet.trace_events().is_empty());
    }

    #[test]
    fn prometheus_exposes_per_thread_breakdowns() {
        let tel = Telemetry::counters_only();
        tel.record_commit(p(0, 2), 10);
        tel.record_abort(p(0, 2), AbortCause::Validation);
        tel.record_abort(p(0, 5), AbortCause::Explicit);
        tel.record_gate_outcome(p(0, 2), GateOutcome::Waited);
        tel.record_gate_outcome(p(0, 5), GateOutcome::Passed);
        let prom = tel.render_prometheus();
        assert!(prom.contains("gstm_thread_abort_causes_total{thread=\"2\",cause=\"validation\"} 1"));
        assert!(prom.contains("gstm_thread_abort_causes_total{thread=\"5\",cause=\"explicit\"} 1"));
        assert!(prom.contains("gstm_thread_gate_outcomes_total{thread=\"2\",outcome=\"waited\"} 1"));
        assert!(prom.contains("gstm_thread_gate_outcomes_total{thread=\"5\",outcome=\"passed\"} 1"));
        // Zero series are suppressed.
        assert!(!prom.contains("thread=\"2\",cause=\"explicit\""));
        assert!(!prom.contains("thread=\"2\",outcome=\"released\""));
    }

    #[test]
    fn attached_drift_tracker_flows_into_snapshot_and_prometheus() {
        use crate::config::GuidanceConfig;
        use crate::tsa::{GuidedModel, Tsa};
        use crate::tss::StateKey;
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let run: Vec<StateKey> = (0..60).map(|i| if i % 2 == 0 { a.clone() } else { b.clone() }).collect();
        let model = GuidedModel::build(Tsa::from_runs(&[run]), &GuidanceConfig::default());
        let tracker = Arc::new(DriftTracker::new(&model));
        let tel = Telemetry::counters_only();
        assert!(tel.snapshot().model_drift.is_none(), "no tracker yet");
        assert!(tel.drift_tracker().is_none());
        tel.attach_drift(tracker.clone());
        for _ in 0..200 {
            tracker.record(0, 1);
            tracker.record(1, 0);
        }
        let snap = tel.snapshot();
        let d = snap.model_drift.as_ref().expect("drift attached");
        assert_eq!(d.on_edge, 400);
        assert_eq!(d.verdict, crate::drift::DriftVerdict::Fresh, "{}", d.reason);
        let prom = snap.render_prometheus();
        assert!(prom.contains("gstm_model_transitions_total{edge=\"modeled\"} 400"));
        assert!(prom.contains("gstm_model_off_model_pct 0"));
        assert!(prom.contains("gstm_model_kl_divergence_nats{stat=\"mean\"} 0"));
        assert!(prom.contains("gstm_model_guidance_metric_pct{source=\"profiled\"}"));
        assert!(prom.contains("gstm_model_guidance_metric_pct{source=\"observed\"}"));
        assert!(prom.contains("gstm_model_states{kind=\"modeled\"} 2"));
        assert!(prom.contains("gstm_model_staleness 1"));
        assert!(tel.drift_tracker().is_some());
    }

    #[test]
    fn contention_stats_flow_into_snapshot_and_prometheus() {
        use crate::contention::ContentionTracker;
        use crate::events::ConflictSite;
        let tel = Telemetry::counters_only();
        assert!(tel.snapshot().contention.is_none(), "absent until attached");
        assert!(
            !tel.render_prometheus().contains("gstm_contention_"),
            "no contention families without a tracker"
        );
        let ct = ContentionTracker::new();
        for _ in 0..4 {
            ct.record(
                ThreadId(1),
                AbortCause::ReadLocked { owner: Some(ThreadId(2)) },
                ConflictSite::at(0xab00),
            );
        }
        ct.record(ThreadId(1), AbortCause::ReadVersion, ConflictSite::UNKNOWN);
        tel.set_contention(ct.snapshot());
        let snap = tel.snapshot();
        let c = snap.contention.as_ref().expect("attached");
        assert_eq!((c.attributed, c.unattributed), (4, 1));
        let prom = snap.render_prometheus();
        assert!(prom.contains("gstm_contention_attributed_total 4"));
        assert!(prom.contains("gstm_contention_unattributed_total 1"));
        assert!(prom.contains(
            "gstm_contention_addr_aborts_total{rank=\"0\",addr=\"0xab00\"} 4"
        ));
        assert!(prom.contains(
            "gstm_contention_pair_aborts_total{victim=\"1\",owner=\"2\"} 4"
        ));
        assert!(prom.contains("gstm_contention_sketch_slots{state=\"occupied\"} 1"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::new();
        h.record(1);
        h.record(2);
        h.record(3);
        let mut out = String::new();
        prom_histogram(&mut out, "x", &h.snapshot());
        assert!(out.contains("x_bucket{le=\"1\"} 1"));
        assert!(out.contains("x_bucket{le=\"3\"} 3"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("x_count 3"));
        assert!(out.contains("x_sum 6"));
    }
}
