//! Poison-transparent wrapper over [`std::sync::Mutex`].
//!
//! The guidance hot path holds its locks only for a handful of
//! instructions and never panics while holding one, so lock poisoning is
//! dead weight: every call site would have to write
//! `.lock().unwrap_or_else(PoisonError::into_inner)`. This wrapper folds
//! that in once, giving the crate a dependency-free mutex with the
//! ergonomics the code previously got from `parking_lot`.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` ignores poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex owning `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available. A poisoned lock (a
    /// panic on another thread while holding it) is treated as unlocked:
    /// the state the tracker protects stays valid under partial updates,
    /// and tests that intentionally panic must not wedge the tracker.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn poisoned_lock_still_opens() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
