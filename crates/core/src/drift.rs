//! Model-drift observability: does the profiled TSA still match live
//! behaviour?
//!
//! Guided execution trusts a model trained on *past* profiling runs. If
//! the workload shifts — different input mix, different thread count,
//! different contention pattern — the profiled transition distribution
//! silently stops describing what the gate is steering, and guidance
//! degrades into pure overhead (the exact failure mode the analyzer's
//! guidance metric exists to predict, except now it happens *after*
//! deployment). This module watches for that live:
//!
//! * [`DriftTracker`] attaches to a [`crate::guidance::GuidedHook`] and
//!   accumulates the **observed** transition distribution during guided
//!   execution — one relaxed atomic add per commit against a flattened
//!   per-edge counter table (modeled edges), plus per-state counters for
//!   transitions that leave the modeled edge set entirely.
//! * [`DriftTracker::report`] compares observed against profiled:
//!   per-state KL divergence, the guidance metric recomputed from the
//!   observed distribution, the fraction of transitions landing outside
//!   modeled edges, and a [`DriftVerdict`] with a human-readable reason
//!   (e.g. *"guidance metric drifted 12% → 54%; model is no longer
//!   biased; re-profile"*).
//!
//! The tracker is exported through the telemetry layer: register it with
//! [`crate::telemetry::Telemetry::attach_drift`] and every snapshot (and
//! its Prometheus exposition, via the `gstm_model_*` families) carries
//! the current [`ModelDrift`]. The chrome-trace "TSA state" track renders
//! the same transitions the tracker counts, so a Perfetto timeline and a
//! drift report describe one execution from two angles.
//!
//! ## Divergence definitions
//!
//! For a state `s` with modeled outbound edges `E(s)` (profiled
//! frequencies `f_e`) and observed on-edge counts `c_e`:
//!
//! * **KL divergence** (nats): `KL(s) = Σ_e p̂_e · ln(p̂_e / p_e)` where
//!   `p̂_e = c_e / Σc` and `p_e = f_e / Σf`, summed over edges with
//!   `c_e > 0`. Both distributions are renormalized over `E(s)`, so KL
//!   measures *reshaping within the modeled edge set*; mass that leaves
//!   the set is reported separately as the off-model fraction (KL against
//!   a zero-probability event would be infinite and uninformative).
//! * **Observed guidance metric**: the analyzer's `100 · Σ|S'| / Σ|S|`
//!   recomputed with observed edge probabilities (per state: `|S|` =
//!   edges with `c_e > 0`, `|S'|` = those with `p̂_e ≥ p̂_h / Tfactor`),
//!   over states with at least one on-edge observation.
//! * **Off-model fraction**: `(off_edge + to_unknown) / (transitions out
//!   of modeled states)` — how often a commit lands somewhere the model
//!   never saw (an unmodeled edge between modeled states, or a state not
//!   in the model at all).
//! * **Unknown-origin fraction**: `from_unknown / (all transitions)` —
//!   the coverage complement. Transitions out of unknown states carry no
//!   per-state attribution and are excluded from the off-model fraction,
//!   so the verdict checks this share separately: a model that only ever
//!   *sees* a sliver of execution is stale no matter how well that
//!   sliver matches.

use crate::telemetry::UNKNOWN_STATE;
use crate::tsa::GuidedModel;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thresholds for the staleness verdict.
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// Observed transitions (all kinds) below which no verdict is issued
    /// ([`DriftVerdict::Insufficient`]).
    pub min_transitions: u64,
    /// Transition-weighted mean KL (nats) at or above which the model
    /// counts as drifting.
    pub kl_drift_nats: f64,
    /// Off-model percentage at or above which the model counts as
    /// drifting.
    pub off_model_drift_pct: f64,
    /// Off-model percentage at or above which the model is stale.
    pub off_model_stale_pct: f64,
    /// Percentage of *all* transitions originating outside the model
    /// (`from_unknown`) at or above which the model counts as drifting —
    /// a coverage signal: off-model mass out of *unknown* states never
    /// shows up in `off_model_pct`, so a model describing only a sliver
    /// of execution would otherwise still read as matching.
    pub unknown_drift_pct: f64,
    /// `from_unknown` percentage at or above which the model is stale.
    pub unknown_stale_pct: f64,
    /// Observed guidance metric at or above which a model that profiled
    /// as biased (below this value) is stale — the paper's "metric ≥ ~50
    /// means guidance is useless" rejection, applied live.
    pub metric_stale_pct: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            min_transitions: 100,
            kl_drift_nats: 0.5,
            off_model_drift_pct: 25.0,
            off_model_stale_pct: 60.0,
            unknown_drift_pct: 25.0,
            unknown_stale_pct: 60.0,
            metric_stale_pct: 50.0,
        }
    }
}

/// The staleness verdict of a drift report, ordered by severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum DriftVerdict {
    /// Too few observed transitions to judge.
    #[default]
    Insufficient,
    /// Observed behaviour matches the profile.
    Fresh,
    /// Distributions are reshaping; guidance still biased but degrading.
    Drifting,
    /// The model no longer describes live behaviour; re-profile.
    Stale,
}

impl DriftVerdict {
    /// Stable numeric code for export (`gstm_model_staleness`):
    /// 0 insufficient, 1 fresh, 2 drifting, 3 stale.
    pub fn code(self) -> u8 {
        match self {
            DriftVerdict::Insufficient => 0,
            DriftVerdict::Fresh => 1,
            DriftVerdict::Drifting => 2,
            DriftVerdict::Stale => 3,
        }
    }

    /// Lower-case label used in reports and exports.
    pub fn label(self) -> &'static str {
        match self {
            DriftVerdict::Insufficient => "insufficient",
            DriftVerdict::Fresh => "fresh",
            DriftVerdict::Drifting => "drifting",
            DriftVerdict::Stale => "stale",
        }
    }
}

impl std::fmt::Display for DriftVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-state drift detail (only states with observed outbound
/// transitions appear in [`ModelDrift::per_state`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StateDrift {
    /// State id in the model.
    pub state: u32,
    /// Observed transitions along modeled edges out of this state.
    pub on_edge: u64,
    /// Observed transitions to a modeled state over an unmodeled edge.
    pub off_edge: u64,
    /// Observed transitions to a state absent from the model.
    pub to_unknown: u64,
    /// KL divergence (nats) of the observed on-edge distribution from
    /// the profiled one (0 when fewer than one on-edge observation).
    pub kl_nats: f64,
}

impl StateDrift {
    /// All observed transitions out of this state.
    pub fn total(&self) -> u64 {
        self.on_edge + self.off_edge + self.to_unknown
    }
}

/// A point-in-time comparison of observed vs profiled transition
/// behaviour — the drift tracker's snapshot.
#[derive(Clone, Debug, Default)]
pub struct ModelDrift {
    /// Observed transitions along modeled edges.
    pub on_edge: u64,
    /// Observed transitions between modeled states over unmodeled edges.
    pub off_edge: u64,
    /// Observed transitions from a modeled state to an unmodeled one.
    pub to_unknown: u64,
    /// Observed transitions out of an unmodeled (unknown) state.
    pub from_unknown: u64,
    /// `100 · (off_edge + to_unknown) / (on_edge + off_edge +
    /// to_unknown)`; 0 when nothing was observed from modeled states.
    pub off_model_pct: f64,
    /// The analyzer's guidance metric of the profiled model.
    pub profiled_metric_pct: f64,
    /// The guidance metric recomputed from the observed distribution
    /// (see the module docs); `None` until at least one on-edge
    /// transition was observed.
    pub observed_metric_pct: Option<f64>,
    /// Transition-weighted mean per-state KL divergence (nats).
    pub mean_kl_nats: f64,
    /// Largest per-state KL divergence (nats).
    pub max_kl_nats: f64,
    /// Number of states in the profiled model.
    pub modeled_states: usize,
    /// Modeled states with at least one observed outbound transition.
    pub observed_states: usize,
    /// Per-state detail for observed states, ascending state id.
    pub per_state: Vec<StateDrift>,
    /// The staleness verdict under the tracker's [`DriftConfig`].
    pub verdict: DriftVerdict,
    /// Human-readable justification of the verdict.
    pub reason: String,
}

impl ModelDrift {
    /// All observed transitions, including those out of unknown states.
    pub fn transitions_total(&self) -> u64 {
        self.on_edge + self.off_edge + self.to_unknown + self.from_unknown
    }

    /// Share of all observed transitions that originate outside the
    /// model, percent — the coverage complement. High values mean the
    /// model never even *sees* most of the execution, regardless of how
    /// well the covered part matches.
    pub fn from_unknown_pct(&self) -> f64 {
        let total = self.transitions_total();
        if total == 0 {
            0.0
        } else {
            100.0 * self.from_unknown as f64 / total as f64
        }
    }

    /// Render a short multi-line human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "model drift: {} — {}", self.verdict, self.reason);
        let _ = writeln!(
            out,
            "  transitions: {} on-edge, {} off-edge, {} to-unknown, {} from-unknown \
             ({:.1}% off-model)",
            self.on_edge, self.off_edge, self.to_unknown, self.from_unknown, self.off_model_pct
        );
        let _ = writeln!(
            out,
            "  guidance metric: profiled {:.1}% vs observed {}",
            self.profiled_metric_pct,
            match self.observed_metric_pct {
                Some(m) => format!("{m:.1}%"),
                None => "n/a".to_string(),
            }
        );
        let _ = writeln!(
            out,
            "  KL divergence: mean {:.3} nats, max {:.3} nats over {}/{} observed states",
            self.mean_kl_nats, self.max_kl_nats, self.observed_states, self.modeled_states
        );
        out
    }
}

/// Lock-free observed-transition accumulator over a profiled model.
///
/// One tracker instance is shared (`Arc`) between the guided hook (which
/// calls [`DriftTracker::record`] once per commit) and whoever reads
/// [`DriftTracker::report`]. All counters are relaxed atomics: a record
/// is one binary search over the source state's (sorted) modeled
/// destinations plus one `fetch_add`.
pub struct DriftTracker {
    /// Prefix offsets into the flattened edge arrays; `num_states + 1`
    /// entries.
    edge_offsets: Box<[u32]>,
    /// Destination state ids, ascending within each source state's row.
    edge_dsts: Box<[u32]>,
    /// Profiled edge frequencies, aligned with `edge_dsts`.
    edge_profiled: Box<[u64]>,
    /// Observed edge counts, aligned with `edge_dsts`.
    edge_counts: Box<[AtomicU64]>,
    /// Per-state: observed transitions to a modeled state over an edge
    /// the profile never saw.
    off_edge: Box<[AtomicU64]>,
    /// Per-state: observed transitions to an unmodeled state.
    to_unknown: Box<[AtomicU64]>,
    /// Observed transitions out of an unmodeled state.
    from_unknown: AtomicU64,
    /// The profiled model's guidance metric (`100 · Σ|S'| / Σ|S|`).
    profiled_metric_pct: f64,
    /// Tfactor the model was thresholded with (reused for the observed
    /// metric so the two are comparable).
    tfactor: f64,
    config: DriftConfig,
}

impl DriftTracker {
    /// Build a tracker over `model` with default thresholds.
    pub fn new(model: &GuidedModel) -> Self {
        Self::with_config(model, DriftConfig::default())
    }

    /// Build a tracker over `model` with explicit thresholds.
    pub fn with_config(model: &GuidedModel, config: DriftConfig) -> Self {
        let tsa = model.tsa();
        let n = tsa.num_states();
        let mut edge_offsets = Vec::with_capacity(n + 1);
        let mut edge_dsts = Vec::new();
        let mut edge_profiled = Vec::new();
        edge_offsets.push(0u32);
        let (mut total_dests, mut kept_dests) = (0u64, 0u64);
        for id in tsa.state_ids() {
            // The TSA keeps outbound edges frequency-sorted; re-sort by
            // destination id so `record` can binary-search.
            let mut edges: Vec<(u32, u64)> = tsa
                .outbound(id)
                .iter()
                .map(|&(dst, f)| (dst.0, f))
                .collect();
            edges.sort_unstable_by_key(|&(dst, _)| dst);
            for (dst, f) in edges {
                edge_dsts.push(dst);
                edge_profiled.push(f);
            }
            edge_offsets.push(edge_dsts.len() as u32);
            let (all, kept) = model.dest_counts(id);
            total_dests += all as u64;
            kept_dests += kept as u64;
        }
        let profiled_metric_pct = if total_dests == 0 {
            100.0
        } else {
            100.0 * kept_dests as f64 / total_dests as f64
        };
        let edge_counts = (0..edge_dsts.len()).map(|_| AtomicU64::new(0)).collect();
        DriftTracker {
            edge_offsets: edge_offsets.into_boxed_slice(),
            edge_dsts: edge_dsts.into_boxed_slice(),
            edge_profiled: edge_profiled.into_boxed_slice(),
            edge_counts,
            off_edge: (0..n).map(|_| AtomicU64::new(0)).collect(),
            to_unknown: (0..n).map(|_| AtomicU64::new(0)).collect(),
            from_unknown: AtomicU64::new(0),
            profiled_metric_pct,
            tfactor: model.tfactor(),
            config,
        }
    }

    /// Number of states in the tracked model.
    pub fn num_states(&self) -> usize {
        self.edge_offsets.len() - 1
    }

    /// Record one observed transition `from → to` (state ids as the
    /// guided hook tracks them; [`UNKNOWN_STATE`] for unmodeled states).
    /// Called on every guided commit, including self-transitions.
    #[inline]
    pub fn record(&self, from: u32, to: u32) {
        if from == UNKNOWN_STATE || from as usize >= self.num_states() {
            self.from_unknown.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let row =
            self.edge_offsets[from as usize] as usize..self.edge_offsets[from as usize + 1] as usize;
        if let Ok(i) = self.edge_dsts[row.clone()].binary_search(&to) {
            self.edge_counts[row.start + i].fetch_add(1, Ordering::Relaxed);
        } else if to == UNKNOWN_STATE {
            self.to_unknown[from as usize].fetch_add(1, Ordering::Relaxed);
        } else {
            self.off_edge[from as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Compare observed against profiled and issue a verdict.
    pub fn report(&self) -> ModelDrift {
        let n = self.num_states();
        let mut per_state = Vec::new();
        let (mut on_edge, mut off_edge_t, mut to_unknown_t) = (0u64, 0u64, 0u64);
        let (mut kl_weighted, mut kl_weight, mut max_kl) = (0.0f64, 0u64, 0.0f64);
        let (mut obs_all, mut obs_kept) = (0u64, 0u64);
        for s in 0..n {
            let row = self.edge_offsets[s] as usize..self.edge_offsets[s + 1] as usize;
            let counts: Vec<u64> = self.edge_counts[row.clone()]
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            let on: u64 = counts.iter().sum();
            let off = self.off_edge[s].load(Ordering::Relaxed);
            let unk = self.to_unknown[s].load(Ordering::Relaxed);
            on_edge += on;
            off_edge_t += off;
            to_unknown_t += unk;
            if on + off + unk == 0 {
                continue;
            }
            let mut kl = 0.0f64;
            if on > 0 {
                let profiled_total: u64 = self.edge_profiled[row.clone()].iter().sum();
                // Observed guidance metric inputs for this state.
                let p_h = counts.iter().copied().max().unwrap_or(0) as f64 / on as f64;
                let threshold = p_h / self.tfactor;
                for (i, &c) in counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let p_obs = c as f64 / on as f64;
                    let p_prof =
                        self.edge_profiled[row.start + i] as f64 / profiled_total as f64;
                    kl += p_obs * (p_obs / p_prof).ln();
                    obs_all += 1;
                    if p_obs >= threshold {
                        obs_kept += 1;
                    }
                }
                // Floating-point dust can push a perfectly matching
                // distribution epsilon-negative.
                kl = kl.max(0.0);
                kl_weighted += kl * on as f64;
                kl_weight += on;
                max_kl = max_kl.max(kl);
            }
            per_state.push(StateDrift {
                state: s as u32,
                on_edge: on,
                off_edge: off,
                to_unknown: unk,
                kl_nats: kl,
            });
        }
        let from_unknown = self.from_unknown.load(Ordering::Relaxed);
        let from_modeled = on_edge + off_edge_t + to_unknown_t;
        let off_model_pct = if from_modeled == 0 {
            0.0
        } else {
            100.0 * (off_edge_t + to_unknown_t) as f64 / from_modeled as f64
        };
        let observed_metric_pct =
            (obs_all > 0).then(|| 100.0 * obs_kept as f64 / obs_all as f64);
        let mean_kl_nats = if kl_weight == 0 {
            0.0
        } else {
            kl_weighted / kl_weight as f64
        };
        let mut drift = ModelDrift {
            on_edge,
            off_edge: off_edge_t,
            to_unknown: to_unknown_t,
            from_unknown,
            off_model_pct,
            profiled_metric_pct: self.profiled_metric_pct,
            observed_metric_pct,
            mean_kl_nats,
            max_kl_nats: max_kl,
            modeled_states: n,
            observed_states: per_state.len(),
            per_state,
            verdict: DriftVerdict::Insufficient,
            reason: String::new(),
        };
        let cfg = &self.config;
        let (verdict, reason) = if drift.transitions_total() < cfg.min_transitions {
            (
                DriftVerdict::Insufficient,
                format!(
                    "{} transitions observed (< {} needed for a verdict)",
                    drift.transitions_total(),
                    cfg.min_transitions
                ),
            )
        } else if drift.profiled_metric_pct < cfg.metric_stale_pct
            && observed_metric_pct.is_some_and(|m| m >= cfg.metric_stale_pct)
        {
            (
                DriftVerdict::Stale,
                format!(
                    "guidance metric drifted {:.0}% → {:.0}%; model is no longer biased; \
                     re-profile",
                    drift.profiled_metric_pct,
                    observed_metric_pct.unwrap_or(100.0)
                ),
            )
        } else if off_model_pct >= cfg.off_model_stale_pct {
            (
                DriftVerdict::Stale,
                format!(
                    "{off_model_pct:.0}% of transitions leave the modeled edge set \
                     (≥ {:.0}%); re-profile",
                    cfg.off_model_stale_pct
                ),
            )
        } else if drift.from_unknown_pct() >= cfg.unknown_stale_pct {
            (
                DriftVerdict::Stale,
                format!(
                    "{:.0}% of transitions originate outside the model (≥ {:.0}%); the \
                     profile no longer covers this execution; re-profile",
                    drift.from_unknown_pct(),
                    cfg.unknown_stale_pct
                ),
            )
        } else if mean_kl_nats >= cfg.kl_drift_nats {
            (
                DriftVerdict::Drifting,
                format!(
                    "mean KL divergence {mean_kl_nats:.2} nats ≥ {:.2}",
                    cfg.kl_drift_nats
                ),
            )
        } else if off_model_pct >= cfg.off_model_drift_pct {
            (
                DriftVerdict::Drifting,
                format!(
                    "{off_model_pct:.0}% of transitions leave the modeled edge set \
                     (≥ {:.0}%)",
                    cfg.off_model_drift_pct
                ),
            )
        } else if drift.from_unknown_pct() >= cfg.unknown_drift_pct {
            (
                DriftVerdict::Drifting,
                format!(
                    "{:.0}% of transitions originate outside the model (≥ {:.0}%); \
                     coverage is eroding",
                    drift.from_unknown_pct(),
                    cfg.unknown_drift_pct
                ),
            )
        } else {
            (
                DriftVerdict::Fresh,
                format!(
                    "observed distribution matches the profile \
                     (KL {mean_kl_nats:.2} nats, {off_model_pct:.1}% off-model)"
                ),
            )
        };
        drift.verdict = verdict;
        drift.reason = reason;
        drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GuidanceConfig;
    use crate::ids::{Pair, ThreadId, TxnId};
    use crate::tsa::Tsa;
    use crate::tss::StateKey;
    use std::sync::Arc;

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    /// Ten solo states cycling 0→1→…→9→0 with occasional jumps — biased
    /// enough that the analyzer metric is low.
    fn biased_model() -> GuidedModel {
        let state = |i: u16| StateKey::solo(p(0, i));
        let mut run = Vec::new();
        let mut cur: u16 = 0;
        for step in 0..2000u16 {
            run.push(state(cur));
            cur = if step % 13 == 5 {
                (cur + 2 + step % 7) % 10
            } else {
                (cur + 1) % 10
            };
        }
        GuidedModel::build(Tsa::from_runs(&[run]), &GuidanceConfig::default())
    }

    /// Replay the model's own profiled distribution into the tracker.
    fn replay_profile(model: &GuidedModel, tracker: &DriftTracker) {
        let tsa = model.tsa();
        for id in tsa.state_ids() {
            for &(dst, f) in tsa.outbound(id) {
                for _ in 0..f {
                    tracker.record(id.0, dst.0);
                }
            }
        }
    }

    #[test]
    fn matching_distribution_is_fresh_with_zero_kl() {
        let model = biased_model();
        let tracker = DriftTracker::new(&model);
        replay_profile(&model, &tracker);
        let d = tracker.report();
        assert_eq!(d.verdict, DriftVerdict::Fresh, "reason: {}", d.reason);
        assert!(d.mean_kl_nats < 1e-9, "KL was {}", d.mean_kl_nats);
        assert_eq!(d.off_model_pct, 0.0);
        assert_eq!((d.off_edge, d.to_unknown, d.from_unknown), (0, 0, 0));
        // Replaying the profile reproduces the profiled metric exactly.
        let obs = d.observed_metric_pct.expect("observed data");
        assert!(
            (obs - d.profiled_metric_pct).abs() < 1e-9,
            "observed {obs} vs profiled {}",
            d.profiled_metric_pct
        );
        assert_eq!(d.observed_states, d.modeled_states);
    }

    #[test]
    fn too_few_transitions_is_insufficient() {
        let model = biased_model();
        let tracker = DriftTracker::new(&model);
        tracker.record(0, 1);
        let d = tracker.report();
        assert_eq!(d.verdict, DriftVerdict::Insufficient);
        assert_eq!(d.transitions_total(), 1);
    }

    #[test]
    fn uniform_observed_distribution_goes_stale_by_metric() {
        // Profile is biased (metric < 50); live behaviour hits every
        // modeled edge equally often → observed metric ≈ 100 → stale.
        let model = biased_model();
        let tracker = DriftTracker::new(&model);
        let tsa = model.tsa();
        for round in 0..40 {
            let _ = round;
            for id in tsa.state_ids() {
                for &(dst, _) in tsa.outbound(id) {
                    tracker.record(id.0, dst.0);
                }
            }
        }
        let d = tracker.report();
        assert!(d.profiled_metric_pct < 50.0);
        assert!(d.observed_metric_pct.unwrap() >= 50.0);
        assert_eq!(d.verdict, DriftVerdict::Stale, "reason: {}", d.reason);
        assert!(d.reason.contains("no longer biased"), "reason: {}", d.reason);
        assert!(d.mean_kl_nats > 0.0, "uniformized distribution has KL > 0");
    }

    #[test]
    fn off_model_transitions_are_classified_and_drive_staleness() {
        let model = biased_model();
        let tracker = DriftTracker::new(&model);
        let tsa = model.tsa();
        let s0 = 0u32;
        // A destination that is a modeled state but not an edge of s0.
        let non_dest = tsa
            .state_ids()
            .map(|i| i.0)
            .find(|&i| {
                i != s0
                    && !tsa
                        .outbound(crate::tsa::StateId(s0))
                        .iter()
                        .any(|&(d, _)| d.0 == i)
            })
            .expect("some non-destination exists");
        for _ in 0..100 {
            tracker.record(s0, non_dest);
            tracker.record(s0, UNKNOWN_STATE);
            tracker.record(UNKNOWN_STATE, s0);
        }
        let d = tracker.report();
        assert_eq!(d.off_edge, 100);
        assert_eq!(d.to_unknown, 100);
        assert_eq!(d.from_unknown, 100);
        assert_eq!(d.on_edge, 0);
        assert!((d.off_model_pct - 100.0).abs() < 1e-9);
        assert_eq!(d.verdict, DriftVerdict::Stale, "reason: {}", d.reason);
        assert!(d.reason.contains("modeled edge set"), "reason: {}", d.reason);
    }

    #[test]
    fn skewed_but_on_edge_distribution_reports_positive_kl() {
        let model = biased_model();
        let tracker = DriftTracker::new(&model);
        let tsa = model.tsa();
        // Observe only each state's *least* likely edge, many times: all
        // mass on-edge, but maximally reshaped.
        for id in tsa.state_ids() {
            if let Some(&(dst, _)) = tsa.outbound(id).last() {
                for _ in 0..50 {
                    tracker.record(id.0, dst.0);
                }
            }
        }
        let d = tracker.report();
        assert_eq!(d.off_model_pct, 0.0);
        assert!(d.mean_kl_nats > 0.5, "KL was {}", d.mean_kl_nats);
        assert!(
            d.verdict >= DriftVerdict::Drifting,
            "verdict {} reason {}",
            d.verdict,
            d.reason
        );
    }

    #[test]
    fn unknown_origin_majority_is_stale_by_coverage() {
        // The covered part matches the profile perfectly, but most of
        // the execution happens in states the model has never seen.
        let model = biased_model();
        let tracker = DriftTracker::new(&model);
        replay_profile(&model, &tracker);
        let on_edge = tracker.report().on_edge;
        // Push from-unknown past the stale share (60% of the total).
        for _ in 0..(2 * on_edge) {
            tracker.record(UNKNOWN_STATE, 0);
        }
        let d = tracker.report();
        assert!(d.mean_kl_nats < 1e-9, "covered part still matches");
        assert!(d.off_model_pct < 1.0);
        assert!(d.from_unknown_pct() > 60.0, "{}", d.from_unknown_pct());
        assert_eq!(d.verdict, DriftVerdict::Stale, "reason: {}", d.reason);
        assert!(d.reason.contains("no longer covers"), "reason: {}", d.reason);
    }

    #[test]
    fn record_is_thread_safe_and_conserves_counts() {
        let model = biased_model();
        let tracker = Arc::new(DriftTracker::new(&model));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let tracker = Arc::clone(&tracker);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u32 {
                    tracker.record(t % 10, (t + i) % 10);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let d = tracker.report();
        assert_eq!(d.transitions_total(), 4000);
    }

    #[test]
    fn verdict_codes_and_labels_are_stable() {
        assert_eq!(DriftVerdict::Insufficient.code(), 0);
        assert_eq!(DriftVerdict::Fresh.code(), 1);
        assert_eq!(DriftVerdict::Drifting.code(), 2);
        assert_eq!(DriftVerdict::Stale.code(), 3);
        assert_eq!(DriftVerdict::Stale.label(), "stale");
        assert_eq!(DriftVerdict::Fresh.to_string(), "fresh");
    }

    #[test]
    fn render_mentions_verdict_and_metrics() {
        let model = biased_model();
        let tracker = DriftTracker::new(&model);
        replay_profile(&model, &tracker);
        let text = tracker.report().render();
        assert!(text.contains("model drift: fresh"));
        assert!(text.contains("guidance metric"));
        assert!(text.contains("KL divergence"));
    }
}
