//! Seeded splitmix64 PRNG — the single shared randomness source for every
//! deterministic replay/interleaving harness in the repo.
//!
//! PR 4 introduced this generator inline in `tests/tests/schedule_replay.rs`
//! to drive N logical threads on one OS thread; PR 5's chaos suite and the
//! tier-1 quickcheck harness each grew their own copy. The model checker
//! (`mck`) needs it too — for seeded conformance schedules that drive the
//! abstract machine and the real `GuidedHook` in lockstep — so the
//! implementation now lives here and the test suites import it.
//!
//! Splitmix64 is used because it is tiny, has no external dependencies, is
//! stable across platforms (pure wrapping integer arithmetic), and every
//! stream is a pure function of its seed — which is exactly the property
//! the replay suites assert ("same seed ⇒ bit-identical execution").

/// Splitmix64 generator (Steele, Lea & Flood; the `java.util.SplittableRandom`
/// output function). One `u64` of state, two xor-multiply rounds per draw.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the stream. Distinct seeds give independent-looking streams;
    /// the same seed always reproduces the same sequence.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (modulo bias is irrelevant for schedule
    /// scripting; what matters is determinism). `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(0xfeed);
        let mut b = SplitMix64::new(0xfeed);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn known_answer_is_stable_across_platforms() {
        // First three outputs for seed 0 — pinned so an accidental edit to
        // the constants breaks loudly instead of silently re-seeding every
        // replay suite in the repo.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn below_stays_in_range_and_hits_everything_small() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "5-way draw missed a bucket in 200 tries");
    }
}
