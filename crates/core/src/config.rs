//! Configuration knobs for guided execution.

/// How an STM run participates in the guidance pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Plain STM: no recording, no gating (the paper's `default`/`orig`).
    Default,
    /// Record the transaction sequence for model generation
    /// (the paper's `mcmc_data` option).
    Profile,
    /// Gate transactions using a trained model (the paper's `model` option),
    /// while also recording states so non-determinism under guidance can be
    /// measured (`ND_mcmc`).
    Guided,
}

/// Tunables of the guided-execution framework (Sections V–VI of the paper).
#[derive(Clone, Copy, Debug)]
pub struct GuidanceConfig {
    /// The *Tfactor* knob: the destination-set threshold is
    /// `P_h / tfactor`, where `P_h` is the largest outbound transition
    /// probability of the current state. The paper sweeps 1..=10 and
    /// settles on 4 ("some machines might require 6").
    pub tfactor: f64,
    /// `k`: how many times a gated transaction re-examines the (possibly
    /// changed) current state before it is released anyway to guarantee
    /// progress and avoid deadlock.
    pub k_retries: u32,
    /// How many spin iterations (each ending in a `yield_now`) one gate
    /// retry waits for the current state to change before counting a retry.
    pub wait_spins: u32,
    /// Minimum number of states for a model to be considered trainable at
    /// all; below this the analyzer declares the model unfit ("if the model
    /// contains too few states ... the model is unfit").
    pub min_states: usize,
    /// Guidance-metric percentage at or above which the analyzer rejects
    /// the model ("If the metric is above 50 ... most of the transition
    /// states in the model are high probability states").
    pub metric_reject_pct: f64,
}

impl Default for GuidanceConfig {
    fn default() -> Self {
        GuidanceConfig {
            tfactor: 4.0,
            k_retries: 16,
            wait_spins: 2,
            min_states: 8,
            metric_reject_pct: 50.0,
        }
    }
}

impl GuidanceConfig {
    /// A config with a specific Tfactor, other knobs at defaults.
    pub fn with_tfactor(tfactor: f64) -> Self {
        GuidanceConfig {
            tfactor,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GuidanceConfig::default();
        assert_eq!(c.tfactor, 4.0);
        assert_eq!(c.metric_reject_pct, 50.0);
        assert!(c.k_retries > 0);
    }

    #[test]
    fn with_tfactor_overrides_only_tfactor() {
        let c = GuidanceConfig::with_tfactor(6.0);
        assert_eq!(c.tfactor, 6.0);
        assert_eq!(c.k_retries, GuidanceConfig::default().k_retries);
    }
}
