//! Thread and transaction identifiers.
//!
//! The paper names states with tuples such as `{<a1b2c3>, <d4>}`, where a
//! letter is a *statically numbered transaction site* (`a` = transaction 0)
//! and the digit is the thread that executed it. [`Pair`] is that atom: one
//! `<txn,thread>` element of a state tuple.

use std::fmt;

/// Identifier of a worker thread participating in transactional execution.
///
/// Thread ids are small dense integers assigned at registration time
/// (thread 0, thread 1, ...), matching the paper's notation where e.g. `b7`
/// means "transaction `b` executed by thread 7".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub u16);

/// Identifier of a static transaction site.
///
/// In the paper each `TM_BEGIN` in the source is statically numbered by a
/// script; in this reproduction each benchmark assigns its atomic blocks
/// dense ids starting at 0. Transaction 0 displays as `a`, 1 as `b`, etc.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u16);

impl ThreadId {
    /// Raw numeric value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TxnId {
    /// Raw numeric value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render small transaction ids as letters like the paper (`a`..`z`),
        // falling back to `t<N>` beyond that.
        if self.0 < 26 {
            write!(f, "{}", (b'a' + self.0 as u8) as char)
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

/// One `<transaction, thread>` element of a thread transactional state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pair {
    /// The static transaction site being executed.
    pub txn: TxnId,
    /// The thread executing it.
    pub thread: ThreadId,
}

impl Pair {
    /// Build a pair from a transaction site and a thread.
    #[inline]
    pub fn new(txn: TxnId, thread: ThreadId) -> Self {
        Pair { txn, thread }
    }

    /// Pack into a single `u32` (transaction in the high half). Used as a
    /// compact key by the guidance engine's per-state membership sets.
    #[inline]
    pub fn packed(self) -> u32 {
        ((self.txn.0 as u32) << 16) | self.thread.0 as u32
    }

    /// Inverse of [`Pair::packed`].
    #[inline]
    pub fn from_packed(raw: u32) -> Self {
        Pair {
            txn: TxnId((raw >> 16) as u16),
            thread: ThreadId((raw & 0xffff) as u16),
        }
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.txn, self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let p = Pair::new(TxnId(3), ThreadId(6));
        assert_eq!(p.to_string(), "d6");
        assert_eq!(Pair::new(TxnId(0), ThreadId(0)).to_string(), "a0");
        assert_eq!(Pair::new(TxnId(26), ThreadId(1)).to_string(), "t261");
    }

    #[test]
    fn packing_round_trips() {
        for txn in [0u16, 1, 25, 26, 1000, u16::MAX] {
            for th in [0u16, 1, 7, 15, u16::MAX] {
                let p = Pair::new(TxnId(txn), ThreadId(th));
                assert_eq!(Pair::from_packed(p.packed()), p);
            }
        }
    }

    #[test]
    fn ordering_is_txn_major() {
        let a = Pair::new(TxnId(1), ThreadId(9));
        let b = Pair::new(TxnId(2), ThreadId(0));
        assert!(a < b);
        assert!(a.packed() < b.packed());
    }
}
