//! The Thread State Automaton (TSA) and the derived guided model.
//!
//! The TSA is a finite automaton whose states are the distinct
//! [`StateKey`]s (thread transactional states) observed across profiling
//! runs, and whose weighted edges count observed transitions between
//! consecutive states in the transaction sequence (Algorithm 1 of the
//! paper). Transition probabilities are relative frequencies over the
//! outbound edges of each state.
//!
//! [`GuidedModel`] is the run-time artifact: for every state it precomputes
//! the *destination set* — the outbound transitions whose probability is at
//! least `P_h / Tfactor` — together with the set of `<txn,thread>` pairs
//! occurring in any tuple of those destination states. The guided STM's
//! gate is a single hash-set membership test against that pair set.

use crate::config::GuidanceConfig;
use crate::ids::Pair;
use crate::tss::StateKey;
use std::collections::{HashMap, HashSet};

/// Dense index of a state in a [`Tsa`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The Thread State Automaton: interned states plus weighted transitions.
#[derive(Clone, Debug, Default)]
pub struct Tsa {
    states: Vec<StateKey>,
    index: HashMap<StateKey, StateId>,
    /// Outbound edges per state: `(destination, frequency)`, sorted by
    /// descending frequency (ties broken by destination id for determinism).
    transitions: Vec<Vec<(StateId, u64)>>,
}

impl Tsa {
    /// Build the automaton from one or more profiled runs, each a sequence
    /// of thread transactional states (the Tseq). Transitions are counted
    /// within a run only — the last state of run *i* is not connected to
    /// the first state of run *i+1*.
    pub fn from_runs<S: AsRef<[StateKey]>>(runs: &[S]) -> Self {
        let mut tsa = Tsa::default();
        let mut counts: Vec<HashMap<StateId, u64>> = Vec::new();
        for run in runs {
            let run = run.as_ref();
            let mut prev: Option<StateId> = None;
            for key in run {
                let id = tsa.intern(key.clone(), &mut counts);
                if let Some(p) = prev {
                    *counts[p.index()].entry(id).or_insert(0) += 1;
                }
                prev = Some(id);
            }
        }
        tsa.transitions = counts
            .into_iter()
            .map(|m| {
                let mut v: Vec<(StateId, u64)> = m.into_iter().collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
                v
            })
            .collect();
        tsa
    }

    /// Reassemble an automaton from its parts (used by the model decoder).
    /// Fails if state keys are not unique or an edge points out of range.
    pub fn from_parts(
        states: Vec<StateKey>,
        transitions: Vec<Vec<(StateId, u64)>>,
    ) -> Result<Self, String> {
        if states.len() != transitions.len() {
            return Err(format!(
                "{} states but {} transition lists",
                states.len(),
                transitions.len()
            ));
        }
        let mut index = HashMap::with_capacity(states.len());
        for (i, key) in states.iter().enumerate() {
            if index.insert(key.clone(), StateId(i as u32)).is_some() {
                return Err(format!("duplicate state key {key}"));
            }
        }
        for edges in &transitions {
            for &(dst, _) in edges {
                if dst.index() >= states.len() {
                    return Err(format!("edge destination {} out of range", dst.0));
                }
            }
        }
        Ok(Tsa {
            states,
            index,
            transitions,
        })
    }

    fn intern(&mut self, key: StateKey, counts: &mut Vec<HashMap<StateId, u64>>) -> StateId {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = StateId(self.states.len() as u32);
        self.index.insert(key.clone(), id);
        self.states.push(key);
        counts.push(HashMap::new());
        id
    }

    /// Number of distinct states — the paper's *non-determinism* measure
    /// for the profiled executions (Table III reports this per model).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The state key for an id.
    pub fn state(&self, id: StateId) -> &StateKey {
        &self.states[id.index()]
    }

    /// Look up a state key.
    pub fn id_of(&self, key: &StateKey) -> Option<StateId> {
        self.index.get(key).copied()
    }

    /// Outbound edges of a state, `(destination, frequency)`, sorted by
    /// descending frequency.
    pub fn outbound(&self, id: StateId) -> &[(StateId, u64)] {
        &self.transitions[id.index()]
    }

    /// Transition probability `P(from -> to)` = frequency of the edge over
    /// the sum of frequencies of all outbound edges of `from`.
    pub fn probability(&self, from: StateId, to: StateId) -> f64 {
        let edges = self.outbound(from);
        let total: u64 = edges.iter().map(|&(_, f)| f).sum();
        if total == 0 {
            return 0.0;
        }
        edges
            .iter()
            .find(|&&(d, _)| d == to)
            .map(|&(_, f)| f as f64 / total as f64)
            .unwrap_or(0.0)
    }

    /// Iterate over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// All states, in interning order.
    pub fn states(&self) -> &[StateKey] {
        &self.states
    }
}

/// Per-state destination summary inside a [`GuidedModel`].
#[derive(Clone, Debug)]
struct DestSet {
    /// Number of outbound destinations in the unguided automaton (|S|).
    all: u32,
    /// Number of destinations kept after thresholding (|S'|).
    kept: u32,
    /// Destination state ids kept after thresholding.
    kept_states: Vec<StateId>,
    /// Packed `<txn,thread>` pairs appearing in any tuple of a kept
    /// destination state. Gate checks are O(1) lookups here.
    allowed_pairs: HashSet<u32>,
}

/// The run-time guidance artifact derived from a [`Tsa`] and a Tfactor.
///
/// This corresponds to the paper's "model ... cut down to exclude
/// low-probability states and ... stored in an efficient bitwise structure"
/// with "a hash map used to look up the destination states".
#[derive(Clone, Debug)]
pub struct GuidedModel {
    tsa: Tsa,
    tfactor: f64,
    dests: Vec<DestSet>,
}

impl GuidedModel {
    /// Threshold every state's outbound edges at `P_h / tfactor` and
    /// precompute the gate's membership sets.
    pub fn build(tsa: Tsa, config: &GuidanceConfig) -> Self {
        assert!(config.tfactor >= 1.0, "Tfactor must be >= 1");
        let mut dests = Vec::with_capacity(tsa.num_states());
        for id in tsa.state_ids() {
            let edges = tsa.outbound(id);
            let total: u64 = edges.iter().map(|&(_, f)| f).sum();
            let mut kept_states = Vec::new();
            let mut allowed_pairs = HashSet::new();
            if total > 0 {
                // Edges are sorted by descending frequency, so the head is P_h.
                let p_h = edges[0].1 as f64 / total as f64;
                let threshold = p_h / config.tfactor;
                for &(dst, f) in edges {
                    let p = f as f64 / total as f64;
                    if p >= threshold {
                        kept_states.push(dst);
                        for pair in tsa.state(dst).pairs() {
                            allowed_pairs.insert(pair.packed());
                        }
                    }
                }
            }
            dests.push(DestSet {
                all: edges.len() as u32,
                kept: kept_states.len() as u32,
                kept_states,
                allowed_pairs,
            });
        }
        GuidedModel {
            tsa,
            tfactor: config.tfactor,
            dests,
        }
    }

    /// The underlying automaton.
    pub fn tsa(&self) -> &Tsa {
        &self.tsa
    }

    /// The Tfactor the model was thresholded with.
    pub fn tfactor(&self) -> f64 {
        self.tfactor
    }

    /// Whether `who` may proceed from `state`: true iff `who` appears in
    /// any tuple (commit or abort) of a high-probability destination state.
    #[inline]
    pub fn is_allowed(&self, state: StateId, who: Pair) -> bool {
        self.dests[state.index()].allowed_pairs.contains(&who.packed())
    }

    /// The thresholded destination states of `state`.
    pub fn kept_destinations(&self, state: StateId) -> &[StateId] {
        &self.dests[state.index()].kept_states
    }

    /// `(|S|, |S'|)` for a state: all vs thresholded destination counts.
    /// The analyzer's guidance metric aggregates these over all states.
    pub fn dest_counts(&self, state: StateId) -> (u32, u32) {
        let d = &self.dests[state.index()];
        (d.all, d.kept)
    }

    /// Look up the state id for an observed state key, if modeled.
    pub fn id_of(&self, key: &StateKey) -> Option<StateId> {
        self.tsa.id_of(key)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.tsa.num_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    fn chain(pairs: &[(Vec<Pair>, Pair)]) -> Vec<StateKey> {
        pairs
            .iter()
            .map(|(a, c)| StateKey::new(a.clone(), *c))
            .collect()
    }

    #[test]
    fn from_runs_counts_transitions() {
        // Run visits A -> B -> A -> B; one run.
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let run = vec![a.clone(), b.clone(), a.clone(), b.clone()];
        let tsa = Tsa::from_runs(&[run]);
        assert_eq!(tsa.num_states(), 2);
        let ia = tsa.id_of(&a).unwrap();
        let ib = tsa.id_of(&b).unwrap();
        assert_eq!(tsa.outbound(ia), &[(ib, 2)]);
        assert_eq!(tsa.outbound(ib), &[(ia, 1)]);
        assert!((tsa.probability(ia, ib) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runs_are_not_stitched_together() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        // Two runs: [A] and [B]. No transition should exist.
        let tsa = Tsa::from_runs(&[vec![a.clone()], vec![b.clone()]]);
        assert_eq!(tsa.num_states(), 2);
        assert_eq!(tsa.num_edges(), 0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let c = StateKey::solo(p(0, 2));
        let run = vec![
            a.clone(),
            b.clone(),
            a.clone(),
            c.clone(),
            a.clone(),
            b.clone(),
        ];
        let tsa = Tsa::from_runs(&[run]);
        let ia = tsa.id_of(&a).unwrap();
        let total: f64 = tsa
            .state_ids()
            .map(|to| tsa.probability(ia, to))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tfactor_one_keeps_only_top_probability_edges() {
        // From A: 3x to B, 1x to C. With Tfactor=1 the threshold equals
        // P_h, so only B survives.
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let c = StateKey::solo(p(0, 2));
        let run = vec![
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            c.clone(),
        ];
        let tsa = Tsa::from_runs(&[run]);
        let ia = tsa.id_of(&a).unwrap();
        let model = GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(1.0));
        let (all, kept) = model.dest_counts(ia);
        assert_eq!(all, 2);
        assert_eq!(kept, 1);
        assert!(model.is_allowed(ia, p(0, 1)));
        assert!(!model.is_allowed(ia, p(0, 2)));
    }

    #[test]
    fn larger_tfactor_keeps_more_destinations() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let c = StateKey::solo(p(0, 2));
        let run = vec![
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            c.clone(),
        ];
        let tsa = Tsa::from_runs(&[run]);
        let ia = tsa.id_of(&a).unwrap();
        // P(B)=0.75, P(C)=0.25; threshold at Tfactor=4 is 0.1875 <= 0.25.
        let model = GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(4.0));
        let (_, kept) = model.dest_counts(ia);
        assert_eq!(kept, 2);
        assert!(model.is_allowed(ia, p(0, 2)));
    }

    #[test]
    fn allowed_includes_abort_participants() {
        // Destination state has thread 5 aborting txn 1; thread 5 must be
        // allowed to run txn 1 from the source state (speculation preserved).
        let src = StateKey::solo(p(0, 0));
        let dst = chain(&[(vec![p(1, 5)], p(0, 2))]).remove(0);
        let run = vec![src.clone(), dst.clone()];
        let tsa = Tsa::from_runs(&[run]);
        let is = tsa.id_of(&src).unwrap();
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        assert!(model.is_allowed(is, p(1, 5)));
        assert!(model.is_allowed(is, p(0, 2)));
        assert!(!model.is_allowed(is, p(1, 2)));
    }

    #[test]
    fn terminal_state_allows_nothing() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let tsa = Tsa::from_runs(&[vec![a, b.clone()]]);
        let ib = tsa.id_of(&b).unwrap();
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        let (all, kept) = model.dest_counts(ib);
        assert_eq!((all, kept), (0, 0));
        assert!(!model.is_allowed(ib, p(0, 0)));
    }
}
