//! The Thread State Automaton (TSA) and the derived guided model.
//!
//! The TSA is a finite automaton whose states are the distinct
//! [`StateKey`]s (thread transactional states) observed across profiling
//! runs, and whose weighted edges count observed transitions between
//! consecutive states in the transaction sequence (Algorithm 1 of the
//! paper). Transition probabilities are relative frequencies over the
//! outbound edges of each state.
//!
//! [`GuidedModel`] is the run-time artifact: for every state it precomputes
//! the *destination set* — the outbound transitions whose probability is at
//! least `P_h / Tfactor` — together with the set of `<txn,thread>` pairs
//! occurring in any tuple of those destination states. The guided STM's
//! gate is a single hash-set membership test against that pair set.

use crate::config::GuidanceConfig;
use crate::ids::Pair;
use crate::tss::{hash_parts, StateKey};
use std::collections::HashMap;

/// Dense index of a state in a [`Tsa`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Open-addressed map from precomputed 64-bit state hashes to state ids.
///
/// This is the "hash map used to look up the destination states" of the
/// paper, built for the commit hot path: states are interned once into a
/// dense id space, each slot stores `(hash64, id)`, and a lookup is one
/// multiply-free probe sequence plus an equality check against the dense
/// `states` vec — no `StateKey` construction, cloning, or SipHash on the
/// query side. Collisions on the full 64-bit hash fall back to the
/// caller-supplied equality predicate, so correctness never depends on
/// hash quality.
#[derive(Clone, Debug, Default)]
struct StateIndex {
    /// Power-of-two slot array; `id == EMPTY_SLOT` marks an empty slot.
    slots: Box<[(u64, u32)]>,
    len: usize,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl StateIndex {
    fn with_capacity(n: usize) -> Self {
        let cap = (n.max(4) * 2).next_power_of_two();
        StateIndex {
            slots: vec![(0, EMPTY_SLOT); cap].into_boxed_slice(),
            len: 0,
        }
    }

    /// Find the id whose slot hash equals `hash` and for which `eq` holds.
    #[inline]
    fn lookup(&self, hash: u64, mut eq: impl FnMut(StateId) -> bool) -> Option<StateId> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let (h, id) = self.slots[i];
            if id == EMPTY_SLOT {
                return None;
            }
            if h == hash && eq(StateId(id)) {
                return Some(StateId(id));
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert a (hash, id) pair. The caller guarantees the id is not
    /// already present under this hash.
    fn insert(&mut self, hash: u64, id: StateId) {
        if self.slots.is_empty() {
            *self = Self::with_capacity(4);
        } else if (self.len + 1) * 4 > self.slots.len() * 3 {
            let old = std::mem::replace(self, Self::with_capacity(self.slots.len()));
            self.len = old.len;
            let mask = self.slots.len() - 1;
            for &(h, raw) in old.slots.iter() {
                if raw == EMPTY_SLOT {
                    continue;
                }
                let mut i = h as usize & mask;
                while self.slots[i].1 != EMPTY_SLOT {
                    i = (i + 1) & mask;
                }
                self.slots[i] = (h, raw);
            }
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        while self.slots[i].1 != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.slots[i] = (hash, id.0);
        self.len += 1;
    }
}

/// The Thread State Automaton: interned states plus weighted transitions.
#[derive(Clone, Debug, Default)]
pub struct Tsa {
    states: Vec<StateKey>,
    index: StateIndex,
    /// Outbound edges per state: `(destination, frequency)`, sorted by
    /// descending frequency (ties broken by destination id for determinism).
    transitions: Vec<Vec<(StateId, u64)>>,
}

impl Tsa {
    /// Build the automaton from one or more profiled runs, each a sequence
    /// of thread transactional states (the Tseq). Transitions are counted
    /// within a run only — the last state of run *i* is not connected to
    /// the first state of run *i+1*.
    pub fn from_runs<S: AsRef<[StateKey]>>(runs: &[S]) -> Self {
        let mut tsa = Tsa::default();
        let mut counts: Vec<HashMap<StateId, u64>> = Vec::new();
        for run in runs {
            let run = run.as_ref();
            let mut prev: Option<StateId> = None;
            for key in run {
                let id = tsa.intern(key.clone(), &mut counts);
                if let Some(p) = prev {
                    *counts[p.index()].entry(id).or_insert(0) += 1;
                }
                prev = Some(id);
            }
        }
        tsa.transitions = counts
            .into_iter()
            .map(|m| {
                let mut v: Vec<(StateId, u64)> = m.into_iter().collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
                v
            })
            .collect();
        tsa
    }

    /// Reassemble an automaton from its parts (used by the model decoder).
    /// Fails if state keys are not unique or an edge points out of range.
    pub fn from_parts(
        states: Vec<StateKey>,
        transitions: Vec<Vec<(StateId, u64)>>,
    ) -> Result<Self, String> {
        if states.len() != transitions.len() {
            return Err(format!(
                "{} states but {} transition lists",
                states.len(),
                transitions.len()
            ));
        }
        let mut index = StateIndex::with_capacity(states.len());
        for (i, key) in states.iter().enumerate() {
            let hash = key.hash64();
            if index.lookup(hash, |id| states[id.index()] == *key).is_some() {
                return Err(format!("duplicate state key {key}"));
            }
            index.insert(hash, StateId(i as u32));
        }
        for edges in &transitions {
            for &(dst, _) in edges {
                if dst.index() >= states.len() {
                    return Err(format!("edge destination {} out of range", dst.0));
                }
            }
        }
        Ok(Tsa {
            states,
            index,
            transitions,
        })
    }

    fn intern(&mut self, key: StateKey, counts: &mut Vec<HashMap<StateId, u64>>) -> StateId {
        let hash = key.hash64();
        if let Some(id) = self.index.lookup(hash, |id| self.states[id.index()] == key) {
            return id;
        }
        // New state: move the key straight into the dense states vec — the
        // index stores only (hash, id), so interning never clones a key.
        let id = StateId(self.states.len() as u32);
        self.states.push(key);
        self.index.insert(hash, id);
        counts.push(HashMap::new());
        id
    }

    /// Number of distinct states — the paper's *non-determinism* measure
    /// for the profiled executions (Table III reports this per model).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The state key for an id.
    pub fn state(&self, id: StateId) -> &StateKey {
        &self.states[id.index()]
    }

    /// Look up a state key.
    pub fn id_of(&self, key: &StateKey) -> Option<StateId> {
        self.index
            .lookup(key.hash64(), |id| self.states[id.index()] == *key)
    }

    /// Look up the state described by a *sorted, deduplicated* abort slice
    /// and a committing pair — the commit hot path's lookup, which hashes
    /// the borrowed parts directly instead of constructing a `StateKey`.
    #[inline]
    pub fn id_of_parts(&self, aborts: &[Pair], commit: Pair) -> Option<StateId> {
        self.index.lookup(hash_parts(aborts, commit), |id| {
            self.states[id.index()].matches_parts(aborts, commit)
        })
    }

    /// Outbound edges of a state, `(destination, frequency)`, sorted by
    /// descending frequency.
    pub fn outbound(&self, id: StateId) -> &[(StateId, u64)] {
        &self.transitions[id.index()]
    }

    /// Transition probability `P(from -> to)` = frequency of the edge over
    /// the sum of frequencies of all outbound edges of `from`.
    pub fn probability(&self, from: StateId, to: StateId) -> f64 {
        let edges = self.outbound(from);
        let total: u64 = edges.iter().map(|&(_, f)| f).sum();
        if total == 0 {
            return 0.0;
        }
        edges
            .iter()
            .find(|&&(d, _)| d == to)
            .map(|&(_, f)| f as f64 / total as f64)
            .unwrap_or(0.0)
    }

    /// Iterate over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// All states, in interning order.
    pub fn states(&self) -> &[StateKey] {
        &self.states
    }
}

/// Per-state destination summary inside a [`GuidedModel`].
#[derive(Clone, Debug)]
struct DestSet {
    /// Number of outbound destinations in the unguided automaton (|S|).
    all: u32,
    /// Number of destinations kept after thresholding (|S'|).
    kept: u32,
    /// Destination state ids kept after thresholding.
    kept_states: Vec<StateId>,
}

/// The run-time guidance artifact derived from a [`Tsa`] and a Tfactor.
///
/// This is the paper's "model ... cut down to exclude low-probability
/// states and ... stored in an efficient bitwise structure" with "a hash
/// map used to look up the destination states": the allowed
/// `<txn,thread>` pairs of every state live in one dense bitmap (a row of
/// `words_per_state` 64-bit words per state, bit `txn * thread_limit +
/// thread`), so the gate's membership test is a bounds check, one load,
/// and a mask — no hashing and no pointer chasing. State lookup at commit
/// goes through the [`Tsa`]'s precomputed-hash index.
#[derive(Clone, Debug)]
pub struct GuidedModel {
    tsa: Tsa,
    tfactor: f64,
    dests: Vec<DestSet>,
    /// Bitmap geometry: pairs with `txn < txn_limit && thread <
    /// thread_limit` are representable; anything outside occurs in no
    /// modeled state and is never allowed.
    txn_limit: u32,
    thread_limit: u32,
    /// `ceil(txn_limit * thread_limit / 64)` — bitmap words per state.
    words_per_state: usize,
    /// `num_states * words_per_state` words, row `s` holding state `s`'s
    /// allowed-pair bitmap.
    bits: Box<[u64]>,
}

impl GuidedModel {
    /// Threshold every state's outbound edges at `P_h / tfactor` and
    /// precompute the gate's bitwise membership structure.
    pub fn build(tsa: Tsa, config: &GuidanceConfig) -> Self {
        assert!(config.tfactor >= 1.0, "Tfactor must be >= 1");
        // Geometry over every pair occurring anywhere in the model: dense
        // in practice, since benchmarks number transaction sites and
        // threads contiguously from zero.
        let (mut txn_limit, mut thread_limit) = (0u32, 0u32);
        for key in tsa.states() {
            for pair in key.pairs() {
                txn_limit = txn_limit.max(pair.txn.0 as u32 + 1);
                thread_limit = thread_limit.max(pair.thread.0 as u32 + 1);
            }
        }
        let words_per_state = ((txn_limit * thread_limit) as usize).div_ceil(64);
        let mut bits = vec![0u64; tsa.num_states() * words_per_state].into_boxed_slice();
        let mut dests = Vec::with_capacity(tsa.num_states());
        for id in tsa.state_ids() {
            let edges = tsa.outbound(id);
            let total: u64 = edges.iter().map(|&(_, f)| f).sum();
            let mut kept_states = Vec::new();
            if total > 0 {
                // Edges are sorted by descending frequency, so the head is P_h.
                let p_h = edges[0].1 as f64 / total as f64;
                let threshold = p_h / config.tfactor;
                let row = &mut bits[id.index() * words_per_state..][..words_per_state];
                for &(dst, f) in edges {
                    let p = f as f64 / total as f64;
                    if p >= threshold {
                        kept_states.push(dst);
                        for pair in tsa.state(dst).pairs() {
                            let bit =
                                pair.txn.0 as usize * thread_limit as usize + pair.thread.0 as usize;
                            row[bit >> 6] |= 1u64 << (bit & 63);
                        }
                    }
                }
            }
            dests.push(DestSet {
                all: edges.len() as u32,
                kept: kept_states.len() as u32,
                kept_states,
            });
        }
        GuidedModel {
            tsa,
            tfactor: config.tfactor,
            dests,
            txn_limit,
            thread_limit,
            words_per_state,
            bits,
        }
    }

    /// The underlying automaton.
    pub fn tsa(&self) -> &Tsa {
        &self.tsa
    }

    /// The Tfactor the model was thresholded with.
    pub fn tfactor(&self) -> f64 {
        self.tfactor
    }

    /// Whether `who` may proceed from `state`: true iff `who` appears in
    /// any tuple (commit or abort) of a high-probability destination state.
    /// A single bitmap load + mask — this sits on every gate retry.
    #[inline]
    pub fn is_allowed(&self, state: StateId, who: Pair) -> bool {
        let (txn, thread) = (who.txn.0 as u32, who.thread.0 as u32);
        if txn >= self.txn_limit || thread >= self.thread_limit {
            return false;
        }
        let bit = (txn * self.thread_limit + thread) as usize;
        let word = self.bits[state.index() * self.words_per_state + (bit >> 6)];
        word >> (bit & 63) & 1 != 0
    }

    /// The thresholded destination states of `state`.
    pub fn kept_destinations(&self, state: StateId) -> &[StateId] {
        &self.dests[state.index()].kept_states
    }

    /// `(|S|, |S'|)` for a state: all vs thresholded destination counts.
    /// The analyzer's guidance metric aggregates these over all states.
    pub fn dest_counts(&self, state: StateId) -> (u32, u32) {
        let d = &self.dests[state.index()];
        (d.all, d.kept)
    }

    /// Look up the state id for an observed state key, if modeled.
    pub fn id_of(&self, key: &StateKey) -> Option<StateId> {
        self.tsa.id_of(key)
    }

    /// Hot-path state lookup by borrowed parts (see [`Tsa::id_of_parts`]).
    #[inline]
    pub fn id_of_parts(&self, aborts: &[Pair], commit: Pair) -> Option<StateId> {
        self.tsa.id_of_parts(aborts, commit)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.tsa.num_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    fn chain(pairs: &[(Vec<Pair>, Pair)]) -> Vec<StateKey> {
        pairs
            .iter()
            .map(|(a, c)| StateKey::new(a.clone(), *c))
            .collect()
    }

    #[test]
    fn from_runs_counts_transitions() {
        // Run visits A -> B -> A -> B; one run.
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let run = vec![a.clone(), b.clone(), a.clone(), b.clone()];
        let tsa = Tsa::from_runs(&[run]);
        assert_eq!(tsa.num_states(), 2);
        let ia = tsa.id_of(&a).unwrap();
        let ib = tsa.id_of(&b).unwrap();
        assert_eq!(tsa.outbound(ia), &[(ib, 2)]);
        assert_eq!(tsa.outbound(ib), &[(ia, 1)]);
        assert!((tsa.probability(ia, ib) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runs_are_not_stitched_together() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        // Two runs: [A] and [B]. No transition should exist.
        let tsa = Tsa::from_runs(&[vec![a.clone()], vec![b.clone()]]);
        assert_eq!(tsa.num_states(), 2);
        assert_eq!(tsa.num_edges(), 0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let c = StateKey::solo(p(0, 2));
        let run = vec![
            a.clone(),
            b.clone(),
            a.clone(),
            c.clone(),
            a.clone(),
            b.clone(),
        ];
        let tsa = Tsa::from_runs(&[run]);
        let ia = tsa.id_of(&a).unwrap();
        let total: f64 = tsa
            .state_ids()
            .map(|to| tsa.probability(ia, to))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tfactor_one_keeps_only_top_probability_edges() {
        // From A: 3x to B, 1x to C. With Tfactor=1 the threshold equals
        // P_h, so only B survives.
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let c = StateKey::solo(p(0, 2));
        let run = vec![
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            c.clone(),
        ];
        let tsa = Tsa::from_runs(&[run]);
        let ia = tsa.id_of(&a).unwrap();
        let model = GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(1.0));
        let (all, kept) = model.dest_counts(ia);
        assert_eq!(all, 2);
        assert_eq!(kept, 1);
        assert!(model.is_allowed(ia, p(0, 1)));
        assert!(!model.is_allowed(ia, p(0, 2)));
    }

    #[test]
    fn larger_tfactor_keeps_more_destinations() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let c = StateKey::solo(p(0, 2));
        let run = vec![
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            c.clone(),
        ];
        let tsa = Tsa::from_runs(&[run]);
        let ia = tsa.id_of(&a).unwrap();
        // P(B)=0.75, P(C)=0.25; threshold at Tfactor=4 is 0.1875 <= 0.25.
        let model = GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(4.0));
        let (_, kept) = model.dest_counts(ia);
        assert_eq!(kept, 2);
        assert!(model.is_allowed(ia, p(0, 2)));
    }

    #[test]
    fn allowed_includes_abort_participants() {
        // Destination state has thread 5 aborting txn 1; thread 5 must be
        // allowed to run txn 1 from the source state (speculation preserved).
        let src = StateKey::solo(p(0, 0));
        let dst = chain(&[(vec![p(1, 5)], p(0, 2))]).remove(0);
        let run = vec![src.clone(), dst.clone()];
        let tsa = Tsa::from_runs(&[run]);
        let is = tsa.id_of(&src).unwrap();
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        assert!(model.is_allowed(is, p(1, 5)));
        assert!(model.is_allowed(is, p(0, 2)));
        assert!(!model.is_allowed(is, p(1, 2)));
    }

    #[test]
    fn id_of_parts_matches_id_of() {
        let keys = vec![
            StateKey::solo(p(0, 0)),
            StateKey::new(vec![p(0, 1), p(1, 2)], p(2, 3)),
            StateKey::new(vec![p(0, 1)], p(2, 3)),
            StateKey::solo(p(2, 3)),
        ];
        let tsa = Tsa::from_runs(&[keys.clone()]);
        for key in &keys {
            let mut aborts = key.aborts().to_vec();
            aborts.sort_unstable();
            assert_eq!(
                tsa.id_of_parts(&aborts, key.commit()),
                tsa.id_of(key),
                "parts lookup disagrees for {key}"
            );
        }
        assert_eq!(tsa.id_of_parts(&[], p(9, 9)), None);
        assert_eq!(tsa.id_of_parts(&[p(0, 1)], p(9, 9)), None);
    }

    #[test]
    fn index_survives_growth_past_initial_capacity() {
        // Hundreds of distinct states force several StateIndex growths;
        // every state must remain findable and intern must stay stable.
        let run: Vec<StateKey> = (0..500u16)
            .map(|i| StateKey::solo(p(i % 26, i / 26)))
            .collect();
        let tsa = Tsa::from_runs(&[run.clone()]);
        let distinct: std::collections::HashSet<_> = run.iter().cloned().collect();
        assert_eq!(tsa.num_states(), distinct.len());
        for key in &distinct {
            let id = tsa.id_of(key).expect("interned state must be found");
            assert_eq!(tsa.state(id), key);
        }
    }

    #[test]
    fn is_allowed_rejects_pairs_outside_bitmap_geometry() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(1, 2));
        let tsa = Tsa::from_runs(&[vec![a.clone(), b]]);
        let ia = tsa.id_of(&a).unwrap();
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        assert!(model.is_allowed(ia, p(1, 2)));
        // In-geometry but never occurring: bit is simply zero.
        assert!(!model.is_allowed(ia, p(0, 1)));
        // Outside the geometry on either axis: bounds check rejects.
        assert!(!model.is_allowed(ia, p(7, 0)));
        assert!(!model.is_allowed(ia, p(0, 7)));
        assert!(!model.is_allowed(ia, p(u16::MAX, u16::MAX)));
    }

    #[test]
    fn terminal_state_allows_nothing() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let tsa = Tsa::from_runs(&[vec![a, b.clone()]]);
        let ib = tsa.id_of(&b).unwrap();
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        let (all, kept) = model.dest_counts(ib);
        assert_eq!((all, kept), (0, 0));
        assert!(!model.is_allowed(ib, p(0, 0)));
    }
}
