//! Model-driven thread placement.
//!
//! The thread-and-data-mapping literature (see PAPERS.md) shows that
//! *where* conflicting threads run matters nearly as much as *whether*
//! they run: threads that abort each other benefit from sharing a cache
//! hierarchy (their conflicted lines ping-pong cheaply) while independent
//! threads should be spread out. This module turns the signals the
//! profiling pipeline already records — per-thread abort co-occurrence
//! inside [`StateKey`]s and TSA transition co-occurrence — into:
//!
//! 1. a **thread-conflict affinity matrix** ([`AffinityMatrix`]),
//! 2. a greedy **clustering** of mutually conflicting threads, and
//! 3. a [`PlacementPlan`]: per-thread CPU core (applied with
//!    `sched_setaffinity` when the platform supports it) and per-thread
//!    clock-shard assignment for the sharded commit clock — conflicting
//!    threads share a shard (their commits serialize on one cheap word
//!    anyway), independent threads get distinct shards and never touch
//!    each other's clock cache line.
//!
//! Everything degrades gracefully: on non-Linux/non-x86_64 targets
//! pinning is a no-op (the plan still assigns shards), and with no model
//! the trivial policies (`compact`, `scatter`, `none`) still work.

use crate::ids::ThreadId;
use crate::tsa::Tsa;

/// How worker threads are pinned to cores (`--pin=` in the harness).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PinPolicy {
    /// No pinning; the OS scheduler places threads (the seed behavior).
    #[default]
    None,
    /// Thread `t` on core `t % cores` — adjacent threads share caches.
    Compact,
    /// Threads spread maximally across the core space.
    Scatter,
    /// Conflict-affinity clusters from the profiled model, packed onto
    /// adjacent cores; requires a trained model (falls back to
    /// [`PinPolicy::Compact`] geometry when the matrix is empty).
    Model,
}

impl PinPolicy {
    /// Parse a `--pin=` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(PinPolicy::None),
            "compact" => Ok(PinPolicy::Compact),
            "scatter" => Ok(PinPolicy::Scatter),
            "model" => Ok(PinPolicy::Model),
            other => Err(format!(
                "unknown pin policy {other:?} (want model|compact|scatter|none)"
            )),
        }
    }

    /// The flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            PinPolicy::None => "none",
            PinPolicy::Compact => "compact",
            PinPolicy::Scatter => "scatter",
            PinPolicy::Model => "model",
        }
    }

    /// Stable numeric code for metrics export
    /// (`gstm_placement_policy`).
    pub fn code(self) -> u8 {
        match self {
            PinPolicy::None => 0,
            PinPolicy::Compact => 1,
            PinPolicy::Scatter => 2,
            PinPolicy::Model => 3,
        }
    }
}

/// Which signal feeds the `--pin=model` affinity matrix (`--affinity=`
/// in the harness). Irrelevant for the trivial pin policies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AffinitySource {
    /// Derive affinity from the profiled automaton
    /// ([`AffinityMatrix::from_tsa`]) — the seed behavior.
    #[default]
    Tsa,
    /// Derive affinity from measured abort attribution
    /// ([`AffinityMatrix::from_contention`]): a contention tracker rides
    /// the profiling runs and its victim/owner matrix becomes the
    /// placement input. Falls back to the TSA signal when profiling
    /// observed no attributable conflicts.
    Measured,
}

impl AffinitySource {
    /// Parse an `--affinity=` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "tsa" => Ok(AffinitySource::Tsa),
            "measured" => Ok(AffinitySource::Measured),
            other => Err(format!(
                "unknown affinity source {other:?} (want tsa|measured)"
            )),
        }
    }

    /// The flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AffinitySource::Tsa => "tsa",
            AffinitySource::Measured => "measured",
        }
    }
}

/// Symmetric thread×thread conflict-affinity weights.
///
/// `weight(a, b)` is high when threads `a` and `b` were observed
/// conflicting (one aborting while the other commits) or repeatedly
/// committing adjacently in the profiled transaction sequence.
#[derive(Clone, Debug)]
pub struct AffinityMatrix {
    threads: usize,
    /// Row-major `threads × threads`, symmetric, zero diagonal.
    weights: Vec<f64>,
}

impl AffinityMatrix {
    /// An all-zero matrix over `threads` threads.
    pub fn zero(threads: usize) -> Self {
        AffinityMatrix {
            threads,
            weights: vec![0.0; threads * threads],
        }
    }

    /// Build the matrix from a profiled automaton.
    ///
    /// Two signals, both already recorded by the profiling pipeline:
    ///
    /// * **abort co-occurrence**: a state whose tuple has thread `a`
    ///   aborting while thread `c` commits is direct evidence the two
    ///   contend; the edge `(a, c)` gains the state's observed
    ///   frequency (the sum of its outbound transition counts, plus one
    ///   so terminal states still contribute).
    /// * **transition co-occurrence**: an edge `s → t` with frequency
    ///   `f` means `s`'s committer and `t`'s committer ran concurrently
    ///   enough to commit adjacently; their affinity gains `f`,
    ///   down-weighted ×0.25 because adjacency is weaker evidence than
    ///   an observed abort.
    pub fn from_tsa(tsa: &Tsa, threads: usize) -> Self {
        let mut m = Self::zero(threads);
        for id in tsa.state_ids() {
            let key = tsa.state(id);
            let freq = tsa.outbound(id).iter().map(|&(_, f)| f).sum::<u64>() + 1;
            let committer = key.commit().thread;
            for abort in key.aborts() {
                m.bump(abort.thread, committer, freq as f64);
            }
            for &(dst, f) in tsa.outbound(id) {
                m.bump(committer, tsa.state(dst).commit().thread, f as f64 * 0.25);
            }
        }
        m
    }

    /// Build the matrix from measured conflict attribution.
    ///
    /// Each [`PairConflict`](crate::contention::PairConflict) is a
    /// victim/owner pair observed at abort time by the contention
    /// tracker: thread `victim` aborted because thread `owner` held (or
    /// doomed it over) the conflicting location. That is *direct*
    /// evidence the two contend — unlike [`from_tsa`](Self::from_tsa),
    /// no adjacency heuristic is needed, so every edge carries its raw
    /// measured abort count.
    pub fn from_contention(stats: &crate::contention::ContentionStats, threads: usize) -> Self {
        let mut m = Self::zero(threads);
        for p in &stats.pairs {
            m.bump(
                ThreadId(p.victim),
                ThreadId(p.owner),
                p.count as f64,
            );
        }
        m
    }

    fn bump(&mut self, a: ThreadId, b: ThreadId, w: f64) {
        let (a, b) = (a.index(), b.index());
        if a == b || a >= self.threads || b >= self.threads {
            return;
        }
        self.weights[a * self.threads + b] += w;
        self.weights[b * self.threads + a] += w;
    }

    /// Number of threads the matrix covers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The affinity weight between two threads (0 when out of range).
    pub fn weight(&self, a: usize, b: usize) -> f64 {
        if a >= self.threads || b >= self.threads {
            return 0.0;
        }
        self.weights[a * self.threads + b]
    }

    /// Whether any pair has nonzero affinity.
    pub fn is_empty(&self) -> bool {
        self.weights.iter().all(|&w| w == 0.0)
    }
}

/// Greedily cluster threads by descending pairwise affinity.
///
/// Classic agglomerative merge: sort the significant pairs by weight,
/// merge the two endpoint clusters whenever the union stays within
/// `max_cluster`. A pair is *significant* when its weight is at least a
/// quarter of the strongest pair's — weak adjacency-only affinity (two
/// threads that merely committed near each other) must not chain every
/// thread into one cluster. Threads with no significant affinity to
/// anyone stay singletons. Returns clusters sorted by lowest member,
/// members ascending — deterministic for a given matrix.
pub fn cluster_threads(m: &AffinityMatrix, max_cluster: usize) -> Vec<Vec<u16>> {
    let n = m.threads();
    let max_cluster = max_cluster.max(1);
    let mut parent: Vec<usize> = (0..n).collect();
    let mut size = vec![1usize; n];
    fn root(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut strongest = 0.0f64;
    for a in 0..n {
        for b in a + 1..n {
            strongest = strongest.max(m.weight(a, b));
        }
    }
    let threshold = strongest / 4.0;
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            let w = m.weight(a, b);
            if w > 0.0 && w >= threshold {
                edges.push((a, b, w));
            }
        }
    }
    // Descending weight; ties broken by (a, b) for determinism.
    edges.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.0.cmp(&y.0))
            .then(x.1.cmp(&y.1))
    });
    for (a, b, _) in edges {
        let (ra, rb) = (root(&mut parent, a), root(&mut parent, b));
        if ra != rb && size[ra] + size[rb] <= max_cluster {
            parent[rb] = ra;
            size[ra] += size[rb];
        }
    }
    let mut by_root: std::collections::BTreeMap<usize, Vec<u16>> = std::collections::BTreeMap::new();
    for t in 0..n {
        let r = root(&mut parent, t);
        by_root.entry(r).or_default().push(t as u16);
    }
    let mut clusters: Vec<Vec<u16>> = by_root.into_values().collect();
    clusters.sort_by_key(|c| c[0]);
    clusters
}

/// A complete placement decision: per-thread core and clock shard.
#[derive(Clone, Debug)]
pub struct PlacementPlan {
    policy: PinPolicy,
    /// Conflict clusters (every thread appears exactly once).
    clusters: Vec<Vec<u16>>,
    /// Thread index → clock shard.
    thread_shard: Vec<u16>,
    /// Thread index → core, `None` = unpinned.
    thread_core: Vec<Option<u16>>,
}

impl PlacementPlan {
    /// A model-driven plan: cluster by affinity, give each cluster one
    /// clock shard, pack clusters onto adjacent cores. `shards` caps
    /// the shard id space (the sharded clock's `MAX_SHARDS`); when
    /// there are more clusters than shards, clusters wrap.
    pub fn model_driven(m: &AffinityMatrix, cores: usize, shards: usize) -> Self {
        let threads = m.threads();
        // Cluster size capped so one cluster never spans more cores
        // than the machine has adjacent (a loose heuristic: at most 4,
        // the common core-per-LLC-slice granule, and never more than
        // the core count).
        let cap = cores.clamp(1, 4);
        let clusters = cluster_threads(m, cap);
        let mut thread_shard = vec![0u16; threads];
        let mut thread_core = vec![None; threads];
        let mut next_core = 0usize;
        for (ci, cluster) in clusters.iter().enumerate() {
            let shard = (ci % shards.max(1)) as u16;
            for &t in cluster {
                thread_shard[t as usize] = shard;
                if cores > 0 {
                    thread_core[t as usize] = Some((next_core % cores) as u16);
                    next_core += 1;
                }
            }
        }
        PlacementPlan {
            policy: PinPolicy::Model,
            clusters,
            thread_shard,
            thread_core,
        }
    }

    /// A model-free plan for the trivial policies. `Compact` packs
    /// thread `t` onto core `t % cores`; `Scatter` spreads threads
    /// across the core space with the widest stride; `None` leaves
    /// every thread unpinned. All three give each thread its own shard
    /// (mod the shard space) — shard *sharing* is a model decision.
    pub fn trivial(policy: PinPolicy, threads: usize, cores: usize, shards: usize) -> Self {
        let thread_shard: Vec<u16> =
            (0..threads).map(|t| (t % shards.max(1)) as u16).collect();
        let thread_core: Vec<Option<u16>> = (0..threads)
            .map(|t| match policy {
                PinPolicy::None | PinPolicy::Model => None,
                PinPolicy::Compact => (cores > 0).then(|| (t % cores) as u16),
                PinPolicy::Scatter => (cores > 0).then(|| {
                    let stride = (cores / threads.max(1)).max(1);
                    ((t * stride) % cores) as u16
                }),
            })
            .collect();
        PlacementPlan {
            policy,
            clusters: (0..threads as u16).map(|t| vec![t]).collect(),
            thread_shard,
            thread_core,
        }
    }

    /// The policy this plan implements.
    pub fn policy(&self) -> PinPolicy {
        self.policy
    }

    /// The conflict clusters (singletons under the trivial policies).
    pub fn clusters(&self) -> &[Vec<u16>] {
        &self.clusters
    }

    /// The clock shard for a thread (threads beyond the plan map to
    /// shard `thread % plan size`-style defaults upstream; here: 0).
    pub fn shard_of(&self, thread: ThreadId) -> Option<u16> {
        self.thread_shard.get(thread.index()).copied()
    }

    /// The core a thread should be pinned to, if any.
    pub fn core_of(&self, thread: ThreadId) -> Option<u16> {
        self.thread_core.get(thread.index()).copied().flatten()
    }

    /// How many threads the plan pins.
    pub fn pinned_count(&self) -> usize {
        self.thread_core.iter().filter(|c| c.is_some()).count()
    }

    /// Number of threads covered.
    pub fn threads(&self) -> usize {
        self.thread_shard.len()
    }
}

// ---------------------------------------------------------------------------
// Core pinning — raw sched_{set,get}affinity, gracefully degraded
// ---------------------------------------------------------------------------

/// Pin the calling thread to `core`. Returns whether the kernel accepted
/// the mask. A no-op (returning `false`) on platforms without the raw
/// syscall implementation below — the placement plan still steers shard
/// assignment there.
pub fn pin_current_thread(core: usize) -> bool {
    imp::pin_current_thread(core)
}

/// Number of CPUs the current thread may run on (the scheduler's
/// affinity mask), falling back to [`std::thread::available_parallelism`]
/// when the syscall is unavailable.
pub fn online_cpus() -> usize {
    imp::online_cpus().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    //! Raw x86_64 Linux syscalls — no libc crate dependency. `pid = 0`
    //! targets the calling thread.
    use std::arch::asm;

    const SYS_SCHED_SETAFFINITY: u64 = 203;
    const SYS_SCHED_GETAFFINITY: u64 = 204;
    const MASK_WORDS: usize = 16; // 1024 CPUs

    unsafe fn affinity_syscall(nr: u64, len: usize, mask: *mut u64) -> i64 {
        let ret: i64;
        asm!(
            "syscall",
            inlateout("rax") nr as i64 => ret,
            in("rdi") 0u64, // pid 0 = current thread
            in("rsi") len as u64,
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub fn pin_current_thread(core: usize) -> bool {
        if core >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        // SAFETY: mask is a live, properly sized buffer; pid 0 targets
        // the calling thread, so no other process is affected.
        let ret = unsafe {
            affinity_syscall(
                SYS_SCHED_SETAFFINITY,
                std::mem::size_of_val(&mask),
                mask.as_mut_ptr(),
            )
        };
        ret == 0
    }

    pub fn online_cpus() -> Option<usize> {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: as above; the kernel writes at most `size_of_val(&mask)`
        // bytes into the buffer.
        let ret = unsafe {
            affinity_syscall(
                SYS_SCHED_GETAFFINITY,
                std::mem::size_of_val(&mask),
                mask.as_mut_ptr(),
            )
        };
        if ret <= 0 {
            return None;
        }
        let n: u32 = mask.iter().map(|w| w.count_ones()).sum();
        (n > 0).then_some(n as usize)
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    pub fn pin_current_thread(_core: usize) -> bool {
        false
    }

    pub fn online_cpus() -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Pair, TxnId};
    use crate::tss::StateKey;

    fn p(txn: u16, thread: u16) -> Pair {
        Pair::new(TxnId(txn), ThreadId(thread))
    }

    /// A run where threads 0 and 1 abort each other constantly while
    /// threads 2 and 3 only ever commit solo.
    fn conflict_run() -> Vec<StateKey> {
        let mut run = Vec::new();
        for _ in 0..20 {
            run.push(StateKey::new(vec![p(0, 1)], p(0, 0)));
            run.push(StateKey::new(vec![p(0, 0)], p(0, 1)));
            run.push(StateKey::solo(p(1, 2)));
            run.push(StateKey::solo(p(1, 3)));
        }
        run
    }

    #[test]
    fn pin_policy_parses() {
        assert_eq!(PinPolicy::parse("model"), Ok(PinPolicy::Model));
        assert_eq!(PinPolicy::parse("none"), Ok(PinPolicy::None));
        assert!(PinPolicy::parse("numa").is_err());
        assert_eq!(PinPolicy::Scatter.as_str(), "scatter");
        assert_eq!(PinPolicy::Model.code(), 3);
    }

    #[test]
    fn affinity_matrix_reflects_observed_conflicts() {
        let tsa = Tsa::from_runs(&[conflict_run()]);
        let m = AffinityMatrix::from_tsa(&tsa, 4);
        assert!(
            m.weight(0, 1) > m.weight(2, 3),
            "aborting pair (0,1) must out-weigh the independent pair (2,3): {} vs {}",
            m.weight(0, 1),
            m.weight(2, 3)
        );
        assert_eq!(m.weight(0, 1), m.weight(1, 0), "matrix is symmetric");
        assert_eq!(m.weight(0, 0), 0.0, "zero diagonal");
    }

    #[test]
    fn affinity_matrix_from_measured_contention() {
        use crate::contention::{ContentionStats, PairConflict};
        let stats = ContentionStats {
            pairs: vec![
                PairConflict { victim: 0, owner: 1, count: 40 },
                PairConflict { victim: 1, owner: 0, count: 35 },
                PairConflict { victim: 2, owner: 3, count: 2 },
                PairConflict { victim: 0, owner: 0, count: 9 }, // self-pair: dropped
            ],
            ..ContentionStats::default()
        };
        let m = AffinityMatrix::from_contention(&stats, 4);
        assert_eq!(m.weight(0, 1), 75.0, "victim/owner directions sum");
        assert_eq!(m.weight(1, 0), 75.0, "matrix is symmetric");
        assert_eq!(m.weight(2, 3), 2.0);
        assert_eq!(m.weight(0, 0), 0.0, "zero diagonal survives self-pairs");
        let clusters = cluster_threads(&m, 2);
        let of = |t: u16| clusters.iter().position(|c| c.contains(&t)).unwrap();
        assert_eq!(of(0), of(1), "hot measured pair clusters together: {clusters:?}");
    }

    #[test]
    fn clustering_groups_the_conflicting_pair() {
        let tsa = Tsa::from_runs(&[conflict_run()]);
        let m = AffinityMatrix::from_tsa(&tsa, 4);
        let clusters = cluster_threads(&m, 2);
        let of = |t: u16| clusters.iter().position(|c| c.contains(&t)).unwrap();
        assert_eq!(of(0), of(1), "conflicting threads cluster together: {clusters:?}");
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 4, "every thread appears exactly once");
    }

    #[test]
    fn clustering_respects_the_size_cap() {
        // All-to-all affinity over 6 threads with cap 2: three pairs.
        let mut m = AffinityMatrix::zero(6);
        for a in 0..6u16 {
            for b in 0..6u16 {
                m.bump(ThreadId(a), ThreadId(b), 1.0);
            }
        }
        let clusters = cluster_threads(&m, 2);
        assert!(clusters.iter().all(|c| c.len() <= 2), "{clusters:?}");
        assert_eq!(clusters.iter().map(Vec::len).sum::<usize>(), 6);
    }

    #[test]
    fn model_plan_shares_shards_within_clusters() {
        let tsa = Tsa::from_runs(&[conflict_run()]);
        let m = AffinityMatrix::from_tsa(&tsa, 4);
        let plan = PlacementPlan::model_driven(&m, 4, 64);
        assert_eq!(plan.policy(), PinPolicy::Model);
        assert_eq!(
            plan.shard_of(ThreadId(0)),
            plan.shard_of(ThreadId(1)),
            "conflicting threads share a clock shard"
        );
        assert_ne!(
            plan.shard_of(ThreadId(2)),
            plan.shard_of(ThreadId(3)),
            "independent threads get distinct shards"
        );
        assert_eq!(plan.pinned_count(), 4, "every thread gets a core");
    }

    #[test]
    fn trivial_plans_have_expected_geometry() {
        let none = PlacementPlan::trivial(PinPolicy::None, 4, 8, 64);
        assert_eq!(none.pinned_count(), 0);
        assert_eq!(none.shard_of(ThreadId(3)), Some(3));

        let compact = PlacementPlan::trivial(PinPolicy::Compact, 4, 2, 64);
        assert_eq!(compact.core_of(ThreadId(0)), Some(0));
        assert_eq!(compact.core_of(ThreadId(3)), Some(1), "wraps at the core count");

        let scatter = PlacementPlan::trivial(PinPolicy::Scatter, 2, 8, 64);
        assert_eq!(scatter.core_of(ThreadId(0)), Some(0));
        assert_eq!(scatter.core_of(ThreadId(1)), Some(4), "stride spreads threads");

        // Shard space smaller than the thread count wraps.
        let wrap = PlacementPlan::trivial(PinPolicy::None, 4, 0, 2);
        assert_eq!(wrap.shard_of(ThreadId(3)), Some(1));
    }

    #[test]
    fn online_cpus_is_sane() {
        let n = online_cpus();
        assert!(n >= 1, "at least the current CPU");
    }

    #[test]
    fn pinning_round_trips_where_supported() {
        // On the supported platform pinning to core 0 must succeed (every
        // affinity mask contains some CPU; 0 exists on any live host in
        // this repo's CI). Elsewhere it must cleanly report false.
        let ok = pin_current_thread(0);
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(ok, "sched_setaffinity(0) failed on the supported platform");
        } else {
            assert!(!ok);
        }
    }
}
