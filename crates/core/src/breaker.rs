//! Guidance circuit breaker: fail-open degradation for pathological
//! models.
//!
//! The paper's only robustness escape is the per-call `k`-retry gate
//! release. That bounds one thread's wait on one gate call, but a model
//! that is systematically wrong (corrupt file, stale profile, adverse
//! schedule) keeps paying the full retry budget on *every* call while
//! guidance adds no value. The breaker watches guidance health and, when
//! it degrades, swaps the gate to fail-open unguided execution — the
//! safe direction, because the gate is a pure scheduling hint: skipping
//! it can never violate STM correctness, only forfeit the variance win.
//!
//! Classic three-state machine:
//!
//! * **Closed** — guidance active. Per-thread watchdogs (consecutive
//!   released-gate and abort-streak counters) trip immediately on a
//!   starvation bound; windowed rates (released-gate share, abort
//!   share, off-model fraction from the live drift tracker) trip at
//!   window boundaries. Rate trips that blame the *model*
//!   (released-rate, off-model) are suppressed while the drift verdict
//!   is [`DriftVerdict::Fresh`] — a fresh model is not the culprit, and
//!   the breaker must never trip on one. Execution-health trips (abort
//!   storm, starvation) stay armed regardless.
//! * **Open** — fail-open: the gate passes every call unexamined. After
//!   `cooldown` gate calls the breaker moves to Half-Open.
//! * **Half-Open** — guidance is probed for `probe_window` calls; the
//!   probe re-closes only if the window was healthy *and* the drift
//!   verdict is Fresh (or Insufficient / absent — no evidence against
//!   the model); otherwise it re-opens for another cooldown.
//!
//! Transitions are serialized by a mutex (they are rare); the hot path
//! costs a handful of relaxed atomics per gate call and is only taken
//! when a breaker is attached at all.

use crate::drift::{DriftTracker, DriftVerdict};
use crate::sync::Mutex;
use crate::telemetry::Telemetry;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Breaker position. Codes are stable (telemetry gauge, trace events).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BreakerState {
    /// Guidance active.
    Closed = 0,
    /// Failed open: gate bypassed.
    Open = 1,
    /// Probing guidance after a cooldown.
    HalfOpen = 2,
}

impl BreakerState {
    /// Stable numeric code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`BreakerState::code`].
    pub fn from_code(code: u8) -> BreakerState {
        match code {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Why a transition happened. Codes are stable (trace events).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BreakerCause {
    /// Released-gate share of a window exceeded the bound.
    ReleasedRate = 0,
    /// Off-model transition fraction exceeded the bound.
    OffModel = 1,
    /// One thread hit the consecutive released-gate bound.
    Starvation = 2,
    /// Abort share of a window (or one thread's abort streak) exceeded
    /// the bound.
    AbortStorm = 3,
    /// A model file was rejected at load (checksum/format/thread-count).
    ModelRejected = 4,
    /// Cooldown elapsed (Open → Half-Open).
    Cooldown = 5,
    /// Half-open probe verdict (re-close or re-open).
    Probe = 6,
    /// An external overload controller (e.g. the server's degradation
    /// ladder) forced the breaker open to shed guidance cost.
    Overload = 7,
}

impl BreakerCause {
    /// Stable numeric code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BreakerCause::ReleasedRate => "released-rate",
            BreakerCause::OffModel => "off-model",
            BreakerCause::Starvation => "starvation",
            BreakerCause::AbortStorm => "abort-storm",
            BreakerCause::ModelRejected => "model-rejected",
            BreakerCause::Cooldown => "cooldown",
            BreakerCause::Probe => "probe",
            BreakerCause::Overload => "overload",
        }
    }

    /// Label for a stable code (trace/report rendering).
    pub fn label_for(code: u8) -> &'static str {
        match code {
            0 => "released-rate",
            1 => "off-model",
            2 => "starvation",
            3 => "abort-storm",
            4 => "model-rejected",
            5 => "cooldown",
            6 => "probe",
            7 => "overload",
            _ => "unknown",
        }
    }
}

/// One observed transition, handed back to the caller so the gate owner
/// can react (e.g. publish the fail-open state word).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerTransition {
    /// State left.
    pub from: BreakerState,
    /// State entered.
    pub to: BreakerState,
    /// Why.
    pub cause: BreakerCause,
}

/// Thresholds and window sizes. Units are gate calls unless noted.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Gate calls per Closed-state evaluation window.
    pub window: u64,
    /// Trip when a window's released-gate share (percent) reaches this.
    pub max_released_pct: f64,
    /// Trip when the drift tracker's off-model fraction (percent)
    /// reaches this at a window boundary.
    pub max_off_model_pct: f64,
    /// Trip when a window's abort share (percent of attempts) reaches
    /// this.
    pub max_abort_pct: f64,
    /// Trip immediately when one thread suffers this many *consecutive*
    /// released gates.
    pub starvation_releases: u32,
    /// Trip immediately when one thread suffers this many consecutive
    /// aborts without a commit.
    pub abort_streak: u32,
    /// Gate calls spent Open before probing (Half-Open).
    pub cooldown: u64,
    /// Gate calls the Half-Open probe observes before judging.
    pub probe_window: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 512,
            max_released_pct: 50.0,
            max_off_model_pct: 60.0,
            max_abort_pct: 25.0,
            starvation_releases: 16,
            abort_streak: 64,
            cooldown: 512,
            probe_window: 256,
        }
    }
}

/// Watchdog slots per breaker; threads above this alias.
const WATCH_SHARDS: usize = 64;

#[repr(align(64))]
#[derive(Default)]
struct Watch {
    consec_released: AtomicU32,
    abort_streak: AtomicU32,
}

/// The circuit breaker. Shared (`Arc`) between the guided hook, the
/// adapt manager, and the harness.
pub struct Breaker {
    cfg: BreakerConfig,
    state: AtomicU32,
    /// Gate calls / released gates in the current Closed or Half-Open
    /// window.
    calls: AtomicU64,
    released: AtomicU64,
    /// Aborts / commits in the current window.
    win_aborts: AtomicU64,
    win_commits: AtomicU64,
    /// Gate calls since the breaker opened.
    open_calls: AtomicU64,
    watch: Vec<Watch>,
    drift: Mutex<Option<Arc<DriftTracker>>>,
    transition: Mutex<()>,
    trips: AtomicU64,
    recloses: AtomicU64,
    probes: AtomicU64,
    model_rejections: AtomicU64,
    last_cause: AtomicU32,
    telemetry: Option<Arc<Telemetry>>,
}

impl Breaker {
    /// A closed breaker with the given thresholds; state changes are
    /// mirrored to `telemetry` when present.
    pub fn new(cfg: BreakerConfig, telemetry: Option<Arc<Telemetry>>) -> Breaker {
        Breaker {
            cfg,
            state: AtomicU32::new(BreakerState::Closed.code() as u32),
            calls: AtomicU64::new(0),
            released: AtomicU64::new(0),
            win_aborts: AtomicU64::new(0),
            win_commits: AtomicU64::new(0),
            open_calls: AtomicU64::new(0),
            watch: (0..WATCH_SHARDS).map(|_| Watch::default()).collect(),
            drift: Mutex::new(None),
            transition: Mutex::new(()),
            trips: AtomicU64::new(0),
            recloses: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            model_rejections: AtomicU64::new(0),
            last_cause: AtomicU32::new(0),
            telemetry: None,
        }
        .with_telemetry(telemetry)
    }

    fn with_telemetry(mut self, telemetry: Option<Arc<Telemetry>>) -> Breaker {
        self.telemetry = telemetry;
        self
    }

    /// The thresholds in force.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// (Re-)attach the live drift tracker consulted at window
    /// boundaries. The adapt manager re-attaches on every hot-swap so
    /// the breaker always judges the epoch that is actually gating.
    pub fn attach_drift(&self, tracker: Arc<DriftTracker>) {
        *self.drift.lock() = Some(tracker);
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        BreakerState::from_code(self.state.load(Ordering::Acquire) as u8)
    }

    /// Whether the gate should bypass guidance (fail-open).
    #[inline]
    pub fn bypass(&self) -> bool {
        self.state.load(Ordering::Acquire) == BreakerState::Open.code() as u32
    }

    /// Closed/Half-Open → Open transitions so far.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Half-Open → Closed transitions so far.
    pub fn recloses(&self) -> u64 {
        self.recloses.load(Ordering::Relaxed)
    }

    /// Open → Half-Open transitions so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Model files rejected via [`Breaker::reject_model`].
    pub fn model_rejections(&self) -> u64 {
        self.model_rejections.load(Ordering::Relaxed)
    }

    /// Cause of the most recent transition.
    pub fn last_cause(&self) -> BreakerCause {
        match self.last_cause.load(Ordering::Relaxed) {
            0 => BreakerCause::ReleasedRate,
            1 => BreakerCause::OffModel,
            2 => BreakerCause::Starvation,
            3 => BreakerCause::AbortStorm,
            4 => BreakerCause::ModelRejected,
            5 => BreakerCause::Cooldown,
            7 => BreakerCause::Overload,
            _ => BreakerCause::Probe,
        }
    }

    /// Force the breaker open from outside the gate path (overload
    /// control). The gate fails open on the next call; recovery rides
    /// the ordinary cooldown → half-open → probe path, so a forced trip
    /// is indistinguishable from an organic one downstream. No-op if
    /// already open.
    pub fn force_open(&self) -> Option<BreakerTransition> {
        let state = self.state();
        if state == BreakerState::Open {
            return None;
        }
        self.transition_to(state, BreakerState::Open, BreakerCause::Overload)
    }

    /// Record one gate call and its outcome. Returns the transition it
    /// caused, if any — the caller owns the fail-open reaction (e.g.
    /// publishing the unknown state word).
    pub fn note_gate(&self, thread: usize, released: bool) -> Option<BreakerTransition> {
        let state = self.state();
        match state {
            BreakerState::Open => {
                let oc = self.open_calls.fetch_add(1, Ordering::Relaxed) + 1;
                if oc >= self.cfg.cooldown {
                    return self.transition_to(
                        BreakerState::Open,
                        BreakerState::HalfOpen,
                        BreakerCause::Cooldown,
                    );
                }
                None
            }
            BreakerState::Closed | BreakerState::HalfOpen => {
                let w = &self.watch[thread % WATCH_SHARDS];
                let streak = if released {
                    self.released.fetch_add(1, Ordering::Relaxed);
                    w.consec_released.fetch_add(1, Ordering::Relaxed) + 1
                } else {
                    w.consec_released.store(0, Ordering::Relaxed);
                    0
                };
                if streak >= self.cfg.starvation_releases {
                    return self.transition_to(state, BreakerState::Open, BreakerCause::Starvation);
                }
                let calls = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
                let win = if state == BreakerState::HalfOpen {
                    self.cfg.probe_window
                } else {
                    self.cfg.window
                };
                if calls >= win {
                    return self.evaluate_window(state);
                }
                None
            }
        }
    }

    /// Record an abort on `thread`.
    pub fn note_abort(&self, thread: usize) -> Option<BreakerTransition> {
        let state = self.state();
        if state == BreakerState::Open {
            return None;
        }
        self.win_aborts.fetch_add(1, Ordering::Relaxed);
        let w = &self.watch[thread % WATCH_SHARDS];
        let streak = w.abort_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.cfg.abort_streak {
            return self.transition_to(state, BreakerState::Open, BreakerCause::AbortStorm);
        }
        None
    }

    /// Record a commit on `thread` (resets its abort streak).
    pub fn note_commit(&self, thread: usize) {
        if self.state() == BreakerState::Open {
            return;
        }
        self.win_commits.fetch_add(1, Ordering::Relaxed);
        self.watch[thread % WATCH_SHARDS]
            .abort_streak
            .store(0, Ordering::Relaxed);
    }

    /// A model file failed its integrity checks at load: count it and
    /// fail open so the run proceeds unguided.
    pub fn reject_model(&self) -> Option<BreakerTransition> {
        self.model_rejections.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.record_model_rejected();
        }
        let state = self.state();
        if state == BreakerState::Open {
            return None;
        }
        self.transition_to(state, BreakerState::Open, BreakerCause::ModelRejected)
    }

    /// Judge a completed Closed window or Half-Open probe.
    fn evaluate_window(&self, at: BreakerState) -> Option<BreakerTransition> {
        // Snapshot-and-reset; racing increments spill into the next
        // window, which only makes windows approximate, never wrong.
        let calls = self.calls.swap(0, Ordering::Relaxed);
        let released = self.released.swap(0, Ordering::Relaxed);
        let aborts = self.win_aborts.swap(0, Ordering::Relaxed);
        let commits = self.win_commits.swap(0, Ordering::Relaxed);
        if calls == 0 {
            return None;
        }
        let released_pct = 100.0 * released as f64 / calls as f64;
        let abort_pct = if aborts + commits > 0 {
            100.0 * aborts as f64 / (aborts + commits) as f64
        } else {
            0.0
        };
        let report = self.drift.lock().as_ref().map(|d| d.report());
        let verdict = report.as_ref().map(|r| r.verdict);
        let off_model_pct = report.as_ref().map(|r| r.off_model_pct);
        match at {
            BreakerState::Closed => {
                // Execution health first: an abort storm means guidance
                // is not helping, whatever the model's own verdict.
                if abort_pct >= self.cfg.max_abort_pct {
                    return self.transition_to(at, BreakerState::Open, BreakerCause::AbortStorm);
                }
                // Model-health trips are suppressed on a Fresh verdict:
                // the breaker never trips on a fresh model.
                if verdict == Some(DriftVerdict::Fresh) {
                    return None;
                }
                if released_pct >= self.cfg.max_released_pct {
                    return self.transition_to(at, BreakerState::Open, BreakerCause::ReleasedRate);
                }
                if off_model_pct.is_some_and(|o| o >= self.cfg.max_off_model_pct) {
                    return self.transition_to(at, BreakerState::Open, BreakerCause::OffModel);
                }
                None
            }
            BreakerState::HalfOpen => {
                let model_ok = match verdict {
                    None | Some(DriftVerdict::Fresh) | Some(DriftVerdict::Insufficient) => true,
                    Some(DriftVerdict::Drifting) | Some(DriftVerdict::Stale) => false,
                };
                let healthy = released_pct < self.cfg.max_released_pct
                    && abort_pct < self.cfg.max_abort_pct
                    && off_model_pct.map_or(true, |o| o < self.cfg.max_off_model_pct)
                    && model_ok;
                if healthy {
                    self.transition_to(at, BreakerState::Closed, BreakerCause::Probe)
                } else {
                    self.transition_to(at, BreakerState::Open, BreakerCause::Probe)
                }
            }
            BreakerState::Open => None,
        }
    }

    /// Serialize and publish a state change; `None` if another thread
    /// already moved the breaker off `from`.
    fn transition_to(
        &self,
        from: BreakerState,
        to: BreakerState,
        cause: BreakerCause,
    ) -> Option<BreakerTransition> {
        let _g = self.transition.lock();
        if self.state() != from || from == to {
            return None;
        }
        self.state.store(to.code() as u32, Ordering::Release);
        self.last_cause.store(cause.code() as u32, Ordering::Relaxed);
        // Fresh books for the new state.
        self.calls.store(0, Ordering::Relaxed);
        self.released.store(0, Ordering::Relaxed);
        self.win_aborts.store(0, Ordering::Relaxed);
        self.win_commits.store(0, Ordering::Relaxed);
        self.open_calls.store(0, Ordering::Relaxed);
        for w in &self.watch {
            w.consec_released.store(0, Ordering::Relaxed);
            w.abort_streak.store(0, Ordering::Relaxed);
        }
        match to {
            BreakerState::Open => {
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::HalfOpen => {
                self.probes.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Closed => {
                self.recloses.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(t) = &self.telemetry {
            t.record_breaker_transition(from.code(), to.code(), cause.code());
        }
        Some(BreakerTransition { from, to, cause })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GuidanceConfig;
    use crate::ids::{Pair, ThreadId, TxnId};
    use crate::tsa::{GuidedModel, Tsa};
    use crate::tss::StateKey;

    fn small_cfg() -> BreakerConfig {
        BreakerConfig {
            window: 16,
            max_released_pct: 50.0,
            max_off_model_pct: 60.0,
            max_abort_pct: 50.0,
            starvation_releases: 4,
            abort_streak: 6,
            cooldown: 8,
            probe_window: 8,
        }
    }

    /// A drift tracker over a small cyclic model, preloaded so its
    /// verdict is `v` (same fixture shape as the drift tests).
    fn tracker_with_verdict(v: DriftVerdict) -> Arc<DriftTracker> {
        let state = |i: u16| StateKey::solo(Pair::new(TxnId(0), ThreadId(i)));
        let mut run = Vec::new();
        for step in 0..2000u16 {
            run.push(state(if step % 13 == 5 { (step * 3 + 2) % 10 } else { step % 10 }));
        }
        let model = GuidedModel::build(Tsa::from_runs(&[run]), &GuidanceConfig::default());
        let tracker = Arc::new(DriftTracker::new(&model));
        match v {
            DriftVerdict::Fresh => {
                // Replay the model's own profiled distribution exactly.
                let tsa = model.tsa();
                for id in tsa.state_ids() {
                    for &(dst, f) in tsa.outbound(id) {
                        for _ in 0..f {
                            tracker.record(id.0, dst.0);
                        }
                    }
                }
            }
            DriftVerdict::Stale => {
                // Everything leaves the modeled edge set.
                for _ in 0..200 {
                    tracker.record(0, crate::telemetry::UNKNOWN_STATE);
                }
            }
            _ => {}
        }
        assert_eq!(tracker.report().verdict, v, "fixture verdict");
        tracker
    }

    fn drain_window(b: &Breaker, released: bool) -> Option<BreakerTransition> {
        // Drive exactly one full Closed window of gate calls.
        let mut tr = None;
        for i in 0..b.config().window {
            // Spread across threads so no starvation streak forms.
            let t = (i % 8) as usize;
            if let Some(x) = b.note_gate(t, released) {
                tr = Some(x);
            }
        }
        tr
    }

    #[test]
    fn trips_on_released_rate_and_counts() {
        let b = Breaker::new(small_cfg(), None);
        assert_eq!(b.state(), BreakerState::Closed);
        let tr = drain_window(&b, true).expect("must trip");
        // With starvation_releases=4 the per-thread streak fires first;
        // either cause is a legitimate released-storm trip.
        assert_eq!(tr.to, BreakerState::Open);
        assert!(matches!(
            tr.cause,
            BreakerCause::ReleasedRate | BreakerCause::Starvation
        ));
        assert_eq!(b.trips(), 1);
        assert!(b.bypass());
    }

    #[test]
    fn released_rate_trip_without_starvation() {
        // Alternate released/passed across many threads: 50% released
        // rate, no streak ever reaches 4.
        let b = Breaker::new(small_cfg(), None);
        let mut tr = None;
        for i in 0..small_cfg().window {
            if let Some(x) = b.note_gate((i % 16) as usize, i % 2 == 0) {
                tr = Some(x);
            }
        }
        let tr = tr.expect("50% released must trip at the window boundary");
        assert_eq!(tr.cause, BreakerCause::ReleasedRate);
    }

    #[test]
    fn quiet_window_stays_closed() {
        let b = Breaker::new(small_cfg(), None);
        for _ in 0..4 {
            assert!(drain_window(&b, false).is_none());
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn half_open_probe_exhausts_exactly_at_the_cooldown_boundary() {
        let cfg = small_cfg();
        let b = Breaker::new(cfg, None);
        // Trip via the starvation watchdog (4 consecutive releases).
        for _ in 0..4 {
            b.note_gate(3, true);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // The first cooldown-1 Open calls must NOT open the probe.
        for i in 0..cfg.cooldown - 1 {
            assert!(
                b.note_gate(i as usize % 8, false).is_none(),
                "call {i} left Open before the cooldown boundary"
            );
            assert_eq!(b.state(), BreakerState::Open);
        }
        // The boundary call itself flips to Half-Open.
        let tr = b.note_gate(0, false).expect("cooldown boundary opens the probe");
        assert_eq!((tr.from, tr.to), (BreakerState::Open, BreakerState::HalfOpen));
        assert_eq!(tr.cause, BreakerCause::Cooldown);
        assert_eq!(b.probes(), 1);
        // Exhaust the probe window with unhealthy traffic (every call
        // released, rotated across threads so no starvation streak can
        // fire first): the judgement lands exactly on the last probe
        // call, not a moment earlier.
        for i in 0..cfg.probe_window - 1 {
            assert!(
                b.note_gate(i as usize % 8, true).is_none(),
                "probe judged early at call {i}"
            );
            assert_eq!(b.state(), BreakerState::HalfOpen);
        }
        let tr = b
            .note_gate((cfg.probe_window - 1) as usize % 8, true)
            .expect("full probe window must be judged");
        assert_eq!(
            (tr.from, tr.to),
            (BreakerState::HalfOpen, BreakerState::Open),
            "an all-released probe re-opens"
        );
        assert_eq!(b.trips(), 2);
        // Second cooldown, then a healthy probe: re-close, counted.
        for i in 0..cfg.cooldown - 1 {
            assert!(b.note_gate(i as usize % 8, false).is_none());
        }
        let tr = b.note_gate(0, false).expect("second cooldown boundary");
        assert_eq!(tr.to, BreakerState::HalfOpen);
        for i in 0..cfg.probe_window - 1 {
            assert!(b.note_gate(i as usize % 8, false).is_none());
        }
        let tr = b
            .note_gate((cfg.probe_window - 1) as usize % 8, false)
            .expect("healthy probe window must be judged");
        assert_eq!(tr.to, BreakerState::Closed, "healthy probe re-closes");
        assert_eq!(b.probes(), 2);
        assert_eq!(b.recloses(), 1);
    }

    #[test]
    fn starvation_watchdog_trips_immediately() {
        let b = Breaker::new(small_cfg(), None);
        let mut tr = None;
        for _ in 0..4 {
            tr = tr.or(b.note_gate(3, true));
        }
        let tr = tr.expect("4 consecutive releases on one thread must trip");
        assert_eq!(tr.cause, BreakerCause::Starvation);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn abort_streak_trips_and_commit_resets() {
        let b = Breaker::new(small_cfg(), None);
        for _ in 0..5 {
            assert!(b.note_abort(1).is_none());
        }
        b.note_commit(1); // resets the streak
        for _ in 0..5 {
            assert!(b.note_abort(1).is_none());
        }
        let tr = b.note_abort(1).expect("6th consecutive abort must trip");
        assert_eq!(tr.cause, BreakerCause::AbortStorm);
    }

    #[test]
    fn abort_rate_trips_at_window_boundary() {
        let b = Breaker::new(small_cfg(), None);
        // 60% abort share spread over threads (no streak), quiet gates.
        for i in 0..30 {
            b.note_abort(i % 8);
            if i % 3 == 0 {
                b.note_commit(i % 8);
            }
        }
        let tr = drain_window(&b, false).expect("abort share must trip");
        assert_eq!(tr.cause, BreakerCause::AbortStorm);
    }

    #[test]
    fn never_trips_on_fresh_model() {
        let b = Breaker::new(small_cfg(), None);
        b.attach_drift(tracker_with_verdict(DriftVerdict::Fresh));
        // 100% released rate — far past max_released_pct — but spread
        // so the starvation watchdog stays quiet.
        let mut tr = None;
        for i in 0..(small_cfg().window * 4) {
            if let Some(x) = b.note_gate((i % 64) as usize, true) {
                tr = Some(x);
            }
        }
        assert!(
            tr.is_none(),
            "model-health trips must be suppressed on a Fresh verdict: {tr:?}"
        );
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn off_model_fraction_trips_when_stale() {
        let b = Breaker::new(small_cfg(), None);
        b.attach_drift(tracker_with_verdict(DriftVerdict::Stale));
        let tr = drain_window(&b, false).expect("off-model fraction must trip");
        assert_eq!(tr.cause, BreakerCause::OffModel);
    }

    #[test]
    fn cooldown_then_half_open_then_reclose() {
        let b = Breaker::new(small_cfg(), None);
        b.reject_model().expect("rejection trips");
        assert!(b.bypass());
        // Cooldown: 8 open gate calls move it to Half-Open.
        let mut tr = None;
        for _ in 0..8 {
            tr = tr.or(b.note_gate(0, false));
        }
        assert_eq!(tr.unwrap().to, BreakerState::HalfOpen);
        assert_eq!(b.probes(), 1);
        assert!(!b.bypass(), "half-open probes guidance again");
        // A healthy probe window (no releases, no aborts) re-closes.
        b.attach_drift(tracker_with_verdict(DriftVerdict::Fresh));
        let mut tr = None;
        for i in 0..8 {
            tr = tr.or(b.note_gate(i % 8, false));
        }
        let tr = tr.expect("probe window must judge");
        assert_eq!((tr.to, tr.cause), (BreakerState::Closed, BreakerCause::Probe));
        assert_eq!(b.recloses(), 1);
    }

    #[test]
    fn unhealthy_probe_reopens() {
        let b = Breaker::new(small_cfg(), None);
        b.reject_model();
        for _ in 0..8 {
            b.note_gate(0, false);
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe window full of released gates (spread to avoid the
        // starvation fast path — we want the windowed judgment).
        let mut tr = None;
        for i in 0..8 {
            tr = tr.or(b.note_gate(i % 8, true));
        }
        let tr = tr.expect("probe window must judge");
        assert_eq!((tr.to, tr.cause), (BreakerState::Open, BreakerCause::Probe));
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn stale_model_blocks_reclose() {
        let b = Breaker::new(small_cfg(), None);
        b.attach_drift(tracker_with_verdict(DriftVerdict::Stale));
        b.reject_model();
        for _ in 0..8 {
            b.note_gate(0, false);
        }
        // Quiet probe, but the verdict says Stale → re-open.
        let mut tr = None;
        for i in 0..8 {
            tr = tr.or(b.note_gate(i % 8, false));
        }
        assert_eq!(tr.unwrap().to, BreakerState::Open);
    }

    #[test]
    fn model_rejection_counts_and_is_idempotent_when_open() {
        let b = Breaker::new(small_cfg(), None);
        assert!(b.reject_model().is_some());
        assert!(b.reject_model().is_none(), "already open");
        assert_eq!(b.model_rejections(), 2);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_state_ignores_abort_and_commit_books() {
        let b = Breaker::new(small_cfg(), None);
        b.reject_model();
        for _ in 0..100 {
            assert!(b.note_abort(0).is_none());
            b.note_commit(0);
        }
        assert_eq!(b.state(), BreakerState::Open);
    }
}
