//! Offline transaction-sequence parsing with *causal* abort attribution.
//!
//! The online tracker ([`crate::guidance`]) uses windowed attribution:
//! aborts observed since the previous commit are grouped with the next
//! commit. That is what a constant-time runtime gate can maintain, and it
//! is used consistently for training and guiding.
//!
//! For offline analysis this module reconstructs the paper's *causal*
//! tuples — "thread 4 committed d **aborting threads 1, 2, 3**" — from a
//! totally ordered [`EventLog`]:
//!
//! * An abort whose cause names the conflicting thread (a held lock's
//!   owner, a dooming writer) is attributed to that thread's **next
//!   commit** — the conflicter was mid-commit when the victim died.
//! * An abort with an anonymous cause (stale version, failed validation)
//!   is attributed to the **previous commit** in the log — the commit
//!   that advanced the clock past the victim's `rv`.
//! * Aborts that cannot be attributed (no commit on either side) are
//!   dropped, mirroring the paper's truncation of half-open windows.
//!
//! [`EventLogHook`] adapts an [`EventLog`] to the [`GuidanceHook`]
//! interface so any STM run can produce input for this parser.

use crate::events::{AbortCause, EventLog, TxEvent};
use crate::guidance::GuidanceHook;
use crate::ids::Pair;
use crate::tss::StateKey;
use std::collections::HashMap;
use std::sync::Arc;

/// A [`GuidanceHook`] that records every begin/abort/commit into an
/// [`EventLog`] for offline causal analysis.
pub struct EventLogHook {
    log: Arc<EventLog>,
}

impl EventLogHook {
    /// Record into the given log.
    pub fn new(log: Arc<EventLog>) -> Self {
        EventLogHook { log }
    }

    /// The underlying log.
    pub fn log(&self) -> &Arc<EventLog> {
        &self.log
    }
}

impl GuidanceHook for EventLogHook {
    fn gate(&self, who: Pair) {
        self.log.push(TxEvent::Begin(who));
    }

    fn on_abort(&self, who: Pair, cause: AbortCause) {
        self.log.push(TxEvent::Abort(who, cause));
    }

    fn on_commit(&self, who: Pair) {
        // The hook interface does not expose the write version; causal
        // attribution below works from order + abort causes instead.
        self.log.push(TxEvent::Commit(who, 0));
    }
}

/// Parse an ordered event log into causal thread transactional states.
///
/// `events` must be sorted by sequence number (as returned by
/// [`EventLog::snapshot`], ignoring the sequence values themselves).
pub fn parse_causal(events: &[TxEvent]) -> Vec<StateKey> {
    // Index of each commit event, in order.
    let commit_positions: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, TxEvent::Commit(..)))
        .map(|(i, _)| i)
        .collect();
    if commit_positions.is_empty() {
        return Vec::new();
    }

    // For every event position, the index (into commit_positions) of the
    // nearest commit at or after it, per conflicting thread and globally.
    let mut aborts_by_commit: HashMap<usize, Vec<Pair>> = HashMap::new();

    // Next commit position of a given thread at or after position i.
    let next_commit_of = |thread: crate::ids::ThreadId, from: usize| -> Option<usize> {
        events[from..].iter().enumerate().find_map(|(off, e)| match e {
            TxEvent::Commit(p, _) if p.thread == thread => Some(from + off),
            _ => None,
        })
    };
    // Last commit position strictly before i.
    let prev_commit = |before: usize| -> Option<usize> {
        commit_positions
            .iter()
            .copied()
            .take_while(|&c| c < before)
            .last()
    };

    for (i, ev) in events.iter().enumerate() {
        if let TxEvent::Abort(victim, cause) = ev {
            let target = match cause.conflicting_thread() {
                Some(thread) => next_commit_of(thread, i),
                None => prev_commit(i),
            };
            if let Some(pos) = target {
                aborts_by_commit.entry(pos).or_default().push(*victim);
            }
        }
    }

    commit_positions
        .iter()
        .map(|&pos| {
            let committer = events[pos].pair();
            let aborts = aborts_by_commit.remove(&pos).unwrap_or_default();
            StateKey::new(aborts, committer)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    #[test]
    fn anonymous_abort_blames_previous_commit() {
        // Commit by thread 0, then thread 1 fails validation (caused by
        // that commit), then thread 1 commits.
        let evs = vec![
            TxEvent::Commit(p(0, 0), 0),
            TxEvent::Abort(p(0, 1), AbortCause::Validation),
            TxEvent::Commit(p(0, 1), 0),
        ];
        let tseq = parse_causal(&evs);
        assert_eq!(
            tseq,
            vec![
                StateKey::new(vec![p(0, 1)], p(0, 0)),
                StateKey::solo(p(0, 1)),
            ]
        );
    }

    #[test]
    fn owned_abort_blames_owners_next_commit() {
        // Thread 1 reads a lock held by thread 0 (mid-commit) and aborts
        // *before* 0's commit event lands in the log.
        let evs = vec![
            TxEvent::Abort(
                p(0, 1),
                AbortCause::ReadLocked {
                    owner: Some(ThreadId(0)),
                },
            ),
            TxEvent::Commit(p(0, 0), 0),
            TxEvent::Commit(p(0, 1), 0),
        ];
        let tseq = parse_causal(&evs);
        assert_eq!(tseq[0], StateKey::new(vec![p(0, 1)], p(0, 0)));
        assert_eq!(tseq[1], StateKey::solo(p(0, 1)));
    }

    #[test]
    fn windowed_and_causal_agree_on_simple_traces() {
        // When every abort is anonymous and immediately precedes the
        // next... actually windowed groups forward, causal groups
        // backward; they agree when each conflict window contains exactly
        // the commit that caused it.
        let evs = vec![
            TxEvent::Commit(p(0, 0), 0),
            TxEvent::Commit(p(1, 2), 0),
            TxEvent::Commit(p(0, 1), 0),
        ];
        let causal = parse_causal(&evs);
        let windowed = crate::tss::parse_tseq(&evs);
        assert_eq!(causal, windowed);
    }

    #[test]
    fn unattributable_aborts_are_dropped() {
        // An anonymous abort before any commit has no causal target.
        let evs = vec![
            TxEvent::Abort(p(0, 1), AbortCause::ReadVersion),
            TxEvent::Commit(p(0, 0), 0),
        ];
        let tseq = parse_causal(&evs);
        assert_eq!(tseq, vec![StateKey::solo(p(0, 0))]);
        // An owned abort whose owner never commits is dropped too.
        let evs = vec![
            TxEvent::Commit(p(0, 0), 0),
            TxEvent::Abort(
                p(0, 1),
                AbortCause::CommitLockBusy {
                    owner: Some(ThreadId(7)),
                },
            ),
        ];
        let tseq = parse_causal(&evs);
        assert_eq!(tseq, vec![StateKey::solo(p(0, 0))]);
    }

    #[test]
    fn empty_log_is_empty_tseq() {
        assert!(parse_causal(&[]).is_empty());
    }

    #[test]
    fn event_log_hook_records_everything() {
        let log = Arc::new(EventLog::new());
        let hook = EventLogHook::new(Arc::clone(&log));
        hook.gate(p(0, 0));
        hook.on_abort(p(0, 1), AbortCause::Validation);
        hook.on_commit(p(0, 0));
        let events: Vec<TxEvent> = log.snapshot().into_iter().map(|(_, e)| e).collect();
        assert_eq!(events.len(), 3);
        let tseq = parse_causal(&events);
        // The only abort precedes the only commit and is anonymous: with
        // no earlier commit it is dropped.
        assert_eq!(tseq, vec![StateKey::solo(p(0, 0))]);
    }

    #[test]
    fn multi_victim_commit_forms_one_tuple() {
        // Paper's example: thread 4 commits d, aborting threads 1,2,3.
        let evs = vec![
            TxEvent::Commit(p(3, 4), 0), // d4
            TxEvent::Abort(p(0, 1), AbortCause::ReadVersion),
            TxEvent::Abort(p(1, 2), AbortCause::Validation),
            TxEvent::Abort(p(2, 3), AbortCause::ReadVersion),
            TxEvent::Commit(p(0, 1), 0),
        ];
        let tseq = parse_causal(&evs);
        assert_eq!(
            tseq[0],
            StateKey::new(vec![p(0, 1), p(1, 2), p(2, 3)], p(3, 4)),
            "{}",
            tseq[0]
        );
    }
}
