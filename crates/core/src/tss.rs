//! Thread Transactional States (TSS).
//!
//! A *thread transactional state* captures the outcome of one commit in a
//! concurrent transactional race: the `<txn,thread>` pair that committed
//! together with the (possibly empty) set of `<txn,thread>` pairs whose
//! attempts rolled back in that window. The paper writes e.g.
//! `{<a1b2c3>, <d4>}` for "thread 4 committed transaction d, aborting
//! threads 1, 2, 3 running transactions a, b, c".
//!
//! ## Attribution model
//!
//! TL2 detects conflicts lazily: a victim discovers it must abort only when
//! it reads a too-new version or fails commit-time validation — *after* the
//! conflicting commit. The online tracker therefore groups the aborts
//! observed since the previous commit with the *next* commit event. Both
//! the profiling recorder and the guided-execution tracker use this same
//! windowed attribution, so the states seen at run time are drawn from the
//! same space as the states in the model. (Section III of the paper argues
//! tracking the state of concurrent transactions this way is sufficient;
//! precise causal attribution via write-versions is available from the raw
//! [`crate::events::EventLog`] for offline studies.)

use crate::events::{TxEvent, TxEvent::*};
use crate::ids::Pair;
use std::fmt;

/// One thread transactional state: the aborted pairs plus the committed pair.
///
/// `aborts` is kept sorted so that states that differ only in the order
/// aborts were observed compare equal, as the paper's tuple notation
/// implies (a tuple denotes a *set* of aborted thread-transactions).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StateKey {
    aborts: Box<[Pair]>,
    commit: Pair,
}

impl StateKey {
    /// Build a state from an abort set and the committing pair. The abort
    /// list is sorted and deduplicated.
    pub fn new(mut aborts: Vec<Pair>, commit: Pair) -> Self {
        aborts.sort_unstable();
        aborts.dedup();
        StateKey {
            aborts: aborts.into_boxed_slice(),
            commit,
        }
    }

    /// A state in which a single thread ran and committed with no aborts,
    /// e.g. `{<c3>}` in the paper's notation.
    pub fn solo(commit: Pair) -> Self {
        StateKey {
            aborts: Box::default(),
            commit,
        }
    }

    /// Build a state from an *already sorted and deduplicated* abort slice.
    ///
    /// This is the online tracker's constructor: the commit-side scratch
    /// buffer is canonicalized in place, looked up in the model by
    /// reference, and only then materialized into an owned key for the
    /// recorded Tseq — one boxed-slice copy, no intermediate `Vec`, and no
    /// allocation at all for the common solo (no aborts) state.
    pub fn from_sorted(aborts: &[Pair], commit: Pair) -> Self {
        debug_assert!(
            aborts.windows(2).all(|w| w[0] < w[1]),
            "aborts must be sorted and deduplicated"
        );
        StateKey {
            aborts: if aborts.is_empty() {
                Box::default()
            } else {
                aborts.into()
            },
            commit,
        }
    }

    /// The committing `<txn,thread>` pair.
    #[inline]
    pub fn commit(&self) -> Pair {
        self.commit
    }

    /// The aborted `<txn,thread>` pairs, sorted.
    #[inline]
    pub fn aborts(&self) -> &[Pair] {
        &self.aborts
    }

    /// Whether `who` participates in this state at all (as the commit or as
    /// one of the aborts). This is the membership test the guided STM uses:
    /// a transaction is allowed to proceed if it appears in *any* tuple of a
    /// high-probability destination state — committing **or** aborting —
    /// because either way it keeps execution on a modeled path.
    pub fn contains(&self, who: Pair) -> bool {
        self.commit == who || self.aborts.binary_search(&who).is_ok()
    }

    /// All pairs of the state: aborts then commit.
    pub fn pairs(&self) -> impl Iterator<Item = Pair> + '_ {
        self.aborts.iter().copied().chain(std::iter::once(self.commit))
    }

    /// The precomputable 64-bit hash of this state (see [`hash_parts`]).
    #[inline]
    pub fn hash64(&self) -> u64 {
        hash_parts(&self.aborts, self.commit)
    }

    /// Whether this state equals the one described by a sorted abort slice
    /// and a committing pair — equality without constructing a `StateKey`.
    #[inline]
    pub fn matches_parts(&self, aborts: &[Pair], commit: Pair) -> bool {
        self.commit == commit && *self.aborts == *aborts
    }
}

/// The 64-bit state hash shared by model build and the commit hot path:
/// FNV-1a over the packed pairs of the state (sorted aborts, then the
/// committing pair under a distinguishing complement so `{<a1>, <b2>}` and
/// `{<b2>, <a1>}`-style swaps cannot collide structurally).
///
/// `aborts` must be sorted and deduplicated — the canonical form
/// [`StateKey`] maintains — so equal states always produce equal hashes.
#[inline]
pub fn hash_parts(aborts: &[Pair], commit: Pair) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for p in aborts {
        h = (h ^ p.packed() as u64).wrapping_mul(PRIME);
    }
    (h ^ !(commit.packed() as u64)).wrapping_mul(PRIME)
}

impl fmt::Display for StateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        if !self.aborts.is_empty() {
            write!(f, "<")?;
            for p in self.aborts.iter() {
                write!(f, "{p}")?;
            }
            write!(f, ">, ")?;
        }
        write!(f, "<{}>}}", self.commit)
    }
}

/// Parse a totally ordered event log into the transaction sequence (Tseq)
/// of thread transactional states, using the same windowed attribution as
/// the online tracker: every abort is grouped with the next commit.
///
/// Aborts trailing the final commit are dropped (they belong to a window
/// that never closed — in practice, retries that committed after the
/// measured region ended).
pub fn parse_tseq(events: &[TxEvent]) -> Vec<StateKey> {
    let mut out = Vec::new();
    let mut pending: Vec<Pair> = Vec::new();
    for ev in events {
        match *ev {
            Begin(_) => {}
            Abort(p, _) => pending.push(p),
            Commit(p, _) => {
                out.push(StateKey::new(std::mem::take(&mut pending), p));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::AbortCause;
    use crate::ids::{ThreadId, TxnId};

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    #[test]
    fn display_matches_paper() {
        let s = StateKey::new(vec![p(0, 1), p(1, 2), p(2, 3)], p(3, 4));
        assert_eq!(s.to_string(), "{<a1b2c3>, <d4>}");
        assert_eq!(StateKey::solo(p(2, 3)).to_string(), "{<c3>}");
    }

    #[test]
    fn abort_order_is_canonicalized() {
        let s1 = StateKey::new(vec![p(1, 2), p(0, 1)], p(3, 4));
        let s2 = StateKey::new(vec![p(0, 1), p(1, 2)], p(3, 4));
        assert_eq!(s1, s2);
        let s3 = StateKey::new(vec![p(0, 1), p(0, 1)], p(3, 4));
        assert_eq!(s3.aborts().len(), 1, "duplicates removed");
    }

    #[test]
    fn contains_checks_commit_and_aborts() {
        let s = StateKey::new(vec![p(0, 6)], p(1, 7));
        assert!(s.contains(p(0, 6)));
        assert!(s.contains(p(1, 7)));
        assert!(!s.contains(p(0, 7)));
        assert!(!s.contains(p(2, 5)));
    }

    #[test]
    fn parse_groups_aborts_with_next_commit() {
        let evs = vec![
            TxEvent::Begin(p(0, 0)),
            TxEvent::Abort(p(0, 1), AbortCause::Validation),
            TxEvent::Abort(p(0, 2), AbortCause::Validation),
            TxEvent::Commit(p(0, 0), 1),
            TxEvent::Commit(p(1, 1), 2),
            TxEvent::Abort(p(1, 3), AbortCause::ReadVersion),
        ];
        let tseq = parse_tseq(&evs);
        assert_eq!(tseq.len(), 2);
        assert_eq!(tseq[0], StateKey::new(vec![p(0, 1), p(0, 2)], p(0, 0)));
        assert_eq!(tseq[1], StateKey::solo(p(1, 1)));
    }

    #[test]
    fn from_sorted_matches_new() {
        let aborts = {
            let mut v = vec![p(1, 2), p(0, 1), p(3, 0)];
            v.sort_unstable();
            v
        };
        let a = StateKey::from_sorted(&aborts, p(4, 4));
        let b = StateKey::new(vec![p(3, 0), p(0, 1), p(1, 2)], p(4, 4));
        assert_eq!(a, b);
        assert_eq!(StateKey::from_sorted(&[], p(2, 2)), StateKey::solo(p(2, 2)));
    }

    #[test]
    fn hash_and_matches_agree_with_equality() {
        let a = StateKey::new(vec![p(0, 1), p(1, 2)], p(2, 3));
        let b = StateKey::new(vec![p(1, 2), p(0, 1)], p(2, 3));
        assert_eq!(a.hash64(), b.hash64(), "canonicalized states hash equal");
        assert_eq!(a.hash64(), hash_parts(a.aborts(), a.commit()));
        assert!(a.matches_parts(b.aborts(), b.commit()));
        assert!(!a.matches_parts(&[], p(2, 3)));
        assert!(!a.matches_parts(a.aborts(), p(2, 4)));
        // Swapping a pair between the abort set and the commit slot must
        // change the hash (the structural-collision case hash_parts guards).
        let swapped = StateKey::new(vec![p(2, 3), p(1, 2)], p(0, 1));
        assert_ne!(a.hash64(), swapped.hash64());
        assert_ne!(
            StateKey::solo(p(0, 1)).hash64(),
            StateKey::new(vec![p(0, 1)], p(0, 1)).hash64()
        );
    }

    #[test]
    fn pairs_iterates_aborts_then_commit() {
        let s = StateKey::new(vec![p(0, 1), p(1, 2)], p(2, 3));
        let pairs: Vec<Pair> = s.pairs().collect();
        assert_eq!(pairs, vec![p(0, 1), p(1, 2), p(2, 3)]);
    }
}
