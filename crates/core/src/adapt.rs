//! Online model regeneration: drift-triggered rebuilds with a lock-free
//! hot-swap.
//!
//! PR 3's [`DriftTracker`] can *diagnose* a stale TSA but the runtime
//! could not act on the verdict: guided execution silently degraded until
//! someone re-profiled offline. This module closes the
//! profile → detect → regenerate loop:
//!
//! * the guided hook keeps the live Tseq flowing into a **bounded sliding
//!   window** maintained inside the tracker's existing commit-side
//!   critical section (no new hot-path locks — see
//!   [`crate::guidance::GuidedHook::window_snapshot`]);
//! * a [`ModelManager`] polls the current epoch's drift verdict on a
//!   background thread and, when the [`DriftConfig`] ladder reaches
//!   `Drifting`/`Stale`, rebuilds the TSA + [`GuidedModel`] from the
//!   window via the ordinary [`Tsa::from_runs`] / [`GuidedModel::build`]
//!   pipeline;
//! * the new model is **hot-swapped** through an [`EpochCell`] so the
//!   gate's read side stays a single shared load — readers never block,
//!   never observe a torn model, and a retired epoch is freed only once
//!   the last in-flight reader lets go of it.
//!
//! ## Epoch cell: swap without reader-side fences
//!
//! The classic lock-free hand-off (epoch-based reclamation, hazard
//! pointers) needs a StoreLoad fence on every read-side pin, which busts
//! the hook's ≤2% overhead budget. The cell instead exploits that swaps
//! are *rare* and readers are *keyed by thread*:
//!
//! * the current [`ModelEpoch`] lives behind a mutex (`current`) next to
//!   a monotone publication counter (`epoch`);
//! * each reader thread owns one cache-padded slot holding a **cached
//!   `Arc<ModelEpoch>`** plus the counter value it was cloned under;
//! * the steady-state read is two relaxed/acquire loads (shared counter,
//!   own tag) and a pointer dereference — no RMW, no fence, no lock;
//! * only when the counter moved does the reader take the cold path:
//!   lock `current`, clone the new `Arc` into its slot, drop the old one.
//!
//! Reclamation falls out of `Arc`: a superseded epoch stays alive exactly
//! as long as some slot (or in-flight clone) still references it, and is
//! freed by whichever reader or manager drops the last reference. A
//! reader stalled mid-window keeps its epoch alive rather than racing a
//! free.
//!
//! Because state ids are *model-relative*, the hook's current-state word
//! carries the epoch id in its upper half (see `guidance.rs`): a gate
//! decision only applies a model to a state recorded under the same
//! epoch; across a swap the state degrades to "unknown", which fails
//! open (threads run freely until the first commit re-anchors the state
//! in the new model — the same semantics the paper uses for unmodeled
//! states).

use crate::breaker::Breaker;
use crate::config::GuidanceConfig;
use crate::drift::{DriftConfig, DriftTracker, DriftVerdict, ModelDrift};
use crate::faultinject::{FaultPlan, FaultSite};
use crate::guidance::GuidedHook;
use crate::sync::Mutex;
use crate::telemetry::Telemetry;
use crate::tsa::{GuidedModel, Tsa};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Cap on the guardian's restart backoff exponent: after repeated caught
/// panics the poll interval stretches to at most `poll << 6` so a
/// deterministically poisoned regeneration step cannot spin a core.
const GUARDIAN_BACKOFF_CAP: u32 = 6;

/// Reader cache slots in an [`EpochCell`] (power of two; thread ids map
/// by masking, like the tracker shards). Threads beyond this alias and
/// fall back to the locked clone path.
pub const EPOCH_SLOTS: usize = 64;

/// Slot owner sentinel: unclaimed.
const FREE: u32 = u32::MAX;

/// Cache tag sentinel: nothing cached yet.
const EMPTY: u32 = u32::MAX;

/// One model generation: the model, its id, and the drift tracker that
/// observes execution *under* it. Rebuilding produces a whole new epoch,
/// so readers can never pair a model with another generation's tracker
/// or state ids.
pub struct ModelEpoch {
    /// Monotone generation number (the initial model is epoch 0).
    pub id: u32,
    /// The guided model of this generation.
    pub model: Arc<GuidedModel>,
    /// Drift observed while this generation was (or is) current.
    pub drift: Arc<DriftTracker>,
}

impl ModelEpoch {
    /// Wrap `model` as generation `id` with a fresh drift tracker.
    pub fn new(id: u32, model: Arc<GuidedModel>, drift_cfg: DriftConfig) -> Arc<Self> {
        let drift = Arc::new(DriftTracker::with_config(&model, drift_cfg));
        Arc::new(ModelEpoch { id, model, drift })
    }
}

/// A reader's per-thread epoch cache. `owner` is claimed once (CAS) by
/// the first thread that maps here; from then on only that thread
/// touches `cached`, so the steady path is single-writer and needs no
/// synchronization beyond the tag load. Aliased threads (owner mismatch)
/// never touch `cached` at all.
struct CacheSlot {
    owner: AtomicU32,
    /// Publication-counter value `cached` was cloned under.
    tag: AtomicU32,
    cached: UnsafeCell<Option<Arc<ModelEpoch>>>,
}

#[repr(align(128))]
struct PaddedSlot(CacheSlot);

impl Default for PaddedSlot {
    fn default() -> Self {
        PaddedSlot(CacheSlot {
            owner: AtomicU32::new(FREE),
            tag: AtomicU32::new(EMPTY),
            cached: UnsafeCell::new(None),
        })
    }
}

/// Lock-free read / locked swap holder for the current [`ModelEpoch`].
///
/// See the module docs for the design. Readers call [`EpochCell::load`]
/// once per hook entry; the manager calls [`EpochCell::swap`] per
/// regeneration.
pub struct EpochCell {
    /// Publication counter: bumped (release) after `current` is replaced.
    epoch: AtomicU32,
    current: Mutex<Arc<ModelEpoch>>,
    slots: Box<[PaddedSlot]>,
}

// SAFETY: `cached` is only written by the slot's owner thread (enforced
// by the `owner` CAS protocol in `load`) and only read through the
// reference that same thread holds; all cross-thread hand-off goes
// through `current`'s mutex and the release/acquire counter.
unsafe impl Send for EpochCell {}
unsafe impl Sync for EpochCell {}

/// What [`EpochCell::load`] hands the hot path: either the calling
/// thread's cached reference (steady state — no refcount traffic) or an
/// owned clone (aliased threads / first touch contention).
pub enum EpochRef<'a> {
    /// Borrowed from the caller's own cache slot.
    Cached(&'a ModelEpoch),
    /// Cloned under the cell lock (slow path).
    Owned(Arc<ModelEpoch>),
}

impl std::ops::Deref for EpochRef<'_> {
    type Target = ModelEpoch;

    #[inline]
    fn deref(&self) -> &ModelEpoch {
        match self {
            EpochRef::Cached(e) => e,
            EpochRef::Owned(e) => e,
        }
    }
}

impl EpochCell {
    /// A cell whose current generation is `initial`.
    pub fn new(initial: Arc<ModelEpoch>) -> Self {
        EpochCell {
            epoch: AtomicU32::new(0),
            current: Mutex::new(initial),
            slots: (0..EPOCH_SLOTS).map(|_| PaddedSlot::default()).collect(),
        }
    }

    /// The publication counter (number of swaps so far).
    pub fn publications(&self) -> u32 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clone the current epoch (locks; not for the hot path).
    pub fn current(&self) -> Arc<ModelEpoch> {
        self.current.lock().clone()
    }

    /// Publish `next` as the current generation. Readers observe the
    /// counter bump on their next load and refresh their slot; the
    /// superseded epoch is freed when the last cached/cloned `Arc` to it
    /// drops.
    pub fn swap(&self, next: Arc<ModelEpoch>) {
        *self.current.lock() = next;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The hot-path read: the caller's current view of the model.
    ///
    /// Steady state (no swap since this thread's last call) is two loads
    /// and no atomic write. The returned reference must be dropped before
    /// the same thread calls `load` again (hook entry points do not
    /// nest), because a refresh replaces the slot's cached `Arc` in
    /// place; this is why the borrowing variant is crate-internal — the
    /// public surface ([`Self::current`]) always clones.
    #[inline]
    pub(crate) fn load(&self, thread_index: usize) -> EpochRef<'_> {
        let now = self.epoch.load(Ordering::Acquire);
        let slot = &self.slots[thread_index & (EPOCH_SLOTS - 1)].0;
        let me = thread_index as u32;
        let owner = slot.owner.load(Ordering::Relaxed);
        let owned = owner == me
            || (owner == FREE
                && slot
                    .owner
                    .compare_exchange(FREE, me, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok());
        if !owned {
            // Aliased thread: never touches the slot cache.
            return EpochRef::Owned(self.current.lock().clone());
        }
        if slot.tag.load(Ordering::Relaxed) != now {
            let fresh = self.current.lock().clone();
            // SAFETY: this thread owns the slot (CAS above), so it is the
            // only writer of `cached`, and no borrow from a previous
            // `load` is alive (see the method contract).
            unsafe { *slot.cached.get() = Some(fresh) };
            slot.tag.store(now, Ordering::Relaxed);
        }
        // SAFETY: sole-owner read; the slot holds `Some` since the
        // refresh above ran at least once for this thread.
        let arc = unsafe { (*slot.cached.get()).as_ref().unwrap() };
        EpochRef::Cached(arc)
    }
}

/// Tunables for online regeneration.
#[derive(Clone, Copy, Debug)]
pub struct AdaptConfig {
    /// Sliding-window capacity, in recorded states (commits). The window
    /// is what a rebuild trains on, so it bounds both rebuild cost and
    /// how much history a regenerated model reflects.
    pub window: usize,
    /// Minimum states the window must hold before a rebuild is
    /// attempted; below this a Drifting/Stale verdict is ignored (a
    /// model built from a sliver would be worse than the stale one).
    pub min_window: usize,
    /// How often the background thread re-examines the drift verdict.
    pub poll: Duration,
    /// Whether [`crate::guidance::GuidedHook::adaptive`] spawns the
    /// guardian thread. Disable for manual, deterministic control of
    /// regeneration points (the schedule-replay tests do).
    pub background: bool,
    /// Drift ladder applied to every epoch's tracker.
    pub drift: DriftConfig,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            window: 4096,
            min_window: 256,
            // A drift verdict needs `min_transitions` commits to form, so
            // sub-millisecond reaction buys nothing; 5ms keeps the idle
            // guardian invisible even on a single-core host.
            poll: Duration::from_millis(5),
            background: true,
            drift: DriftConfig::default(),
        }
    }
}

impl AdaptConfig {
    /// A config with a specific window capacity, other knobs at defaults
    /// (`min_window` is clamped to at most half the window).
    pub fn with_window(window: usize) -> Self {
        let d = Self::default();
        AdaptConfig {
            window: window.max(1),
            min_window: d.min_window.min(window.max(1) / 2).max(1),
            ..d
        }
    }
}

/// Drives online regeneration for one [`GuidedHook`]: owns the epoch
/// cell, decides when to rebuild, and performs the swap.
pub struct ModelManager {
    cell: EpochCell,
    guidance: GuidanceConfig,
    cfg: AdaptConfig,
    swaps: AtomicU64,
    /// Rebuild opportunities declined because the window was too small.
    skipped_thin_window: AtomicU64,
    stop: AtomicBool,
    guardian: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Swap events and per-epoch drift re-attachment go here when set.
    telemetry: Option<Arc<Telemetry>>,
    /// Breaker tracking the live epoch's drift (re-attached per swap).
    breaker: Option<Arc<Breaker>>,
    /// Chaos plan probed at the guardian-panic site.
    faults: Option<Arc<FaultPlan>>,
    /// Guardian panics caught and survived.
    restarts: AtomicU64,
}

impl ModelManager {
    /// A manager whose epoch 0 is `initial`. `guidance` parameterizes
    /// rebuilt models exactly like the offline pipeline. No background
    /// thread is started — see [`ModelManager::spawn_guardian`].
    pub fn new(
        initial: Arc<GuidedModel>,
        guidance: GuidanceConfig,
        cfg: AdaptConfig,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Arc<Self> {
        Self::with_robustness(initial, guidance, cfg, telemetry, None, None)
    }

    /// [`ModelManager::new`] plus the robustness layer: the `breaker`
    /// follows the live epoch's drift tracker across hot-swaps, and the
    /// guardian probes `faults`' guardian-panic site each poll (panics
    /// are caught, counted, and survived with capped backoff).
    pub fn with_robustness(
        initial: Arc<GuidedModel>,
        guidance: GuidanceConfig,
        cfg: AdaptConfig,
        telemetry: Option<Arc<Telemetry>>,
        breaker: Option<Arc<Breaker>>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Arc<Self> {
        let epoch = ModelEpoch::new(0, initial, cfg.drift);
        if let Some(t) = &telemetry {
            t.attach_drift(epoch.drift.clone());
        }
        if let Some(b) = &breaker {
            b.attach_drift(epoch.drift.clone());
        }
        Arc::new(ModelManager {
            cell: EpochCell::new(epoch),
            guidance,
            cfg,
            swaps: AtomicU64::new(0),
            skipped_thin_window: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            guardian: Mutex::new(None),
            telemetry,
            breaker,
            faults,
            restarts: AtomicU64::new(0),
        })
    }

    /// The epoch cell (hot-path read side).
    pub(crate) fn cell(&self) -> &EpochCell {
        &self.cell
    }

    /// The current generation.
    pub fn epoch(&self) -> Arc<ModelEpoch> {
        self.cell.current()
    }

    /// The current generation's id.
    pub fn epoch_id(&self) -> u32 {
        self.cell.current().id
    }

    /// Completed hot-swaps so far.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Rebuilds skipped because the sliding window was thinner than
    /// `min_window`.
    pub fn skipped_thin_window(&self) -> u64 {
        self.skipped_thin_window.load(Ordering::Relaxed)
    }

    /// Guardian panics caught and survived so far.
    pub fn guardian_restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// The adaptation tunables in effect.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// Drift report of the *current* generation.
    pub fn drift_report(&self) -> ModelDrift {
        self.cell.current().drift.report()
    }

    /// One decision step: read the current epoch's verdict and rebuild
    /// from `hook`'s sliding window when it says Drifting/Stale. Returns
    /// the new epoch id when a swap happened.
    ///
    /// This is what the guardian thread calls each poll; tests call it
    /// directly for deterministic, scripted swap points.
    pub fn maybe_regenerate(&self, hook: &GuidedHook) -> Option<u32> {
        let epoch = self.cell.current();
        let report = epoch.drift.report();
        if report.verdict < DriftVerdict::Drifting {
            return None;
        }
        self.regenerate_from(hook, report.verdict)
    }

    /// Unconditionally rebuild from `hook`'s window (verdict recorded as
    /// `cause`) and swap. Returns the new epoch id, or `None` if the
    /// window is thinner than `min_window`.
    pub fn regenerate_from(&self, hook: &GuidedHook, cause: DriftVerdict) -> Option<u32> {
        let window = hook.window_snapshot();
        if window.len() < self.cfg.min_window {
            self.skipped_thin_window.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // The window is one contiguous run: transitions are counted
        // between adjacent states exactly like the offline profiler.
        let tsa = Tsa::from_runs(&[window]);
        let model = Arc::new(GuidedModel::build(tsa, &self.guidance));
        Some(self.swap_in(model, cause))
    }

    /// Install `model` as a new generation (epoch id +1), re-attach the
    /// new drift tracker to telemetry, and record the swap event.
    /// `cause` is the verdict that triggered the regeneration.
    pub fn swap_in(&self, model: Arc<GuidedModel>, cause: DriftVerdict) -> u32 {
        let next_id = self.cell.current().id.wrapping_add(1);
        let epoch = ModelEpoch::new(next_id, model, self.cfg.drift);
        if let Some(t) = &self.telemetry {
            t.attach_drift(epoch.drift.clone());
            t.record_model_swap(next_id, cause);
        }
        if let Some(b) = &self.breaker {
            // The breaker judges model health against the generation that
            // is actually gating.
            b.attach_drift(epoch.drift.clone());
        }
        self.cell.swap(epoch);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        next_id
    }

    /// Start the background guardian: every `poll`, upgrade the hook and
    /// run [`ModelManager::maybe_regenerate`]. The thread exits when the
    /// hook is dropped or [`ModelManager::stop`] is called. At most one
    /// guardian per manager.
    pub fn spawn_guardian(self: &Arc<Self>, hook: &Arc<GuidedHook>) {
        let mut slot = self.guardian.lock();
        if slot.is_some() {
            return;
        }
        let mgr = Arc::clone(self);
        let hook: Weak<GuidedHook> = Arc::downgrade(hook);
        *slot = Some(std::thread::spawn(move || {
            // Consecutive caught panics; a clean step resets it, so the
            // backoff only stretches while the step keeps failing.
            let mut streak = 0u32;
            loop {
                let backoff = 1u32 << streak.min(GUARDIAN_BACKOFF_CAP);
                std::thread::sleep(mgr.cfg.poll * backoff);
                if mgr.stop.load(Ordering::Acquire) {
                    break;
                }
                let Some(hook) = hook.upgrade() else { break };
                // The regeneration step is panic-isolated: a panic in the
                // drift read, the rebuild, or the injected guardian-panic
                // site must degrade adaptation (the stale epoch keeps
                // gating), never take the process down with it.
                let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(f) = &mgr.faults {
                        if f.should_fire(FaultSite::GuardianPanic, 0).is_some() {
                            panic!("injected guardian panic (chaos plan)");
                        }
                    }
                    mgr.maybe_regenerate(&hook);
                }));
                match step {
                    Ok(()) => streak = 0,
                    Err(_) => {
                        streak = streak.saturating_add(1);
                        mgr.restarts.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = &mgr.telemetry {
                            t.record_guardian_restart();
                        }
                    }
                }
            }
        }));
    }

    /// Signal the guardian to exit and join it (idempotent; no-op when
    /// none was spawned).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.guardian.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ModelManager {
    fn drop(&mut self) {
        // The guardian holds an Arc to the manager, so by the time Drop
        // runs the thread has already exited (or was never spawned); the
        // stop() here only covers the never-upgraded case.
        self.stop.store(true, Ordering::Release);
    }
}

/// Pack an (epoch, state) pair into the hook's current-state word.
#[inline]
pub(crate) fn pack_state(epoch: u32, state: u32) -> u64 {
    ((epoch as u64) << 32) | state as u64
}

/// Split the hook's current-state word into (epoch, state).
#[inline]
pub(crate) fn unpack_state(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Pair, ThreadId, TxnId};
    use crate::tss::StateKey;

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    fn model_of(pairs: &[(u16, u16)]) -> Arc<GuidedModel> {
        let run: Vec<StateKey> = std::iter::repeat(pairs)
            .take(8)
            .flatten()
            .map(|&(t, th)| StateKey::solo(p(t, th)))
            .collect();
        Arc::new(GuidedModel::build(
            Tsa::from_runs(&[run]),
            &GuidanceConfig::default(),
        ))
    }

    #[test]
    fn pack_unpack_round_trips() {
        for (e, s) in [(0, 0), (1, 7), (u32::MAX, u32::MAX), (3, u32::MAX - 1)] {
            assert_eq!(unpack_state(pack_state(e, s)), (e, s));
        }
    }

    #[test]
    fn cell_load_caches_until_swap() {
        let m = model_of(&[(0, 0), (0, 1)]);
        let cell = EpochCell::new(ModelEpoch::new(0, m.clone(), DriftConfig::default()));
        {
            let e = cell.load(3);
            assert_eq!(e.id, 0);
            assert!(matches!(e, EpochRef::Cached(_)));
        }
        {
            // Second load from the same thread: still the cached epoch.
            let e = cell.load(3);
            assert_eq!(e.id, 0);
        }
        cell.swap(ModelEpoch::new(1, model_of(&[(1, 0)]), DriftConfig::default()));
        let e = cell.load(3);
        assert_eq!(e.id, 1, "reader refreshes after a swap");
        assert_eq!(cell.publications(), 1);
    }

    #[test]
    fn aliased_slot_readers_get_owned_clones() {
        let m = model_of(&[(0, 0)]);
        let cell = EpochCell::new(ModelEpoch::new(0, m, DriftConfig::default()));
        // Thread 2 claims slot 2; thread 2 + EPOCH_SLOTS aliases to the
        // same slot and must take the owned path.
        let _ = cell.load(2);
        let aliased = cell.load(2 + EPOCH_SLOTS);
        assert!(matches!(aliased, EpochRef::Owned(_)));
        assert_eq!(aliased.id, 0);
    }

    #[test]
    fn retired_epoch_is_freed_after_readers_refresh() {
        let m0 = model_of(&[(0, 0)]);
        let e0 = ModelEpoch::new(0, m0, DriftConfig::default());
        let weak0 = Arc::downgrade(&e0);
        let cell = EpochCell::new(e0);
        let _ = cell.load(1); // thread 1 caches epoch 0
        cell.swap(ModelEpoch::new(1, model_of(&[(1, 1)]), DriftConfig::default()));
        assert!(
            weak0.upgrade().is_some(),
            "epoch 0 still pinned by thread 1's slot"
        );
        let _ = cell.load(1); // refresh drops the pin
        assert!(
            weak0.upgrade().is_none(),
            "last reference gone => epoch reclaimed"
        );
    }

    #[test]
    fn slot_claim_race_crowns_exactly_one_owner() {
        // Four OS threads whose indices all alias to slot 5 race the
        // claim CAS from a barrier. Exactly one may win the slot (and see
        // borrowed `Cached` refs); every loser must take the mutex
        // fallback (`Owned` clones) on every single load — the unclaimed
        // slot is never written by two threads.
        let cell = Arc::new(EpochCell::new(ModelEpoch::new(
            0,
            model_of(&[(0, 0)]),
            DriftConfig::default(),
        )));
        let contenders: Vec<usize> = (0..4).map(|i| 5 + i * EPOCH_SLOTS).collect();
        let barrier = Arc::new(std::sync::Barrier::new(contenders.len() + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = contenders
            .iter()
            .map(|&idx| {
                let cell = Arc::clone(&cell);
                let barrier = Arc::clone(&barrier);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut saw_cached = false;
                    let mut last = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let e = cell.load(idx);
                        saw_cached |= matches!(e, EpochRef::Cached(_));
                        assert!(e.id >= last, "epoch went backwards");
                        last = e.id;
                    }
                    saw_cached
                })
            })
            .collect();
        barrier.wait();
        for id in 1..=20u32 {
            cell.swap(ModelEpoch::new(id, model_of(&[(0, 0)]), DriftConfig::default()));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let saw_cached: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let owner = cell.slots[5].0.owner.load(Ordering::Relaxed);
        let winner = contenders
            .iter()
            .position(|&idx| idx as u32 == owner)
            .expect("slot 5 claimed by one of the contenders");
        assert!(saw_cached[winner], "the CAS winner reads through its slot");
        let cached_count = saw_cached.iter().filter(|&&c| c).count();
        assert_eq!(cached_count, 1, "losers must always fall back to owned clones");
    }

    #[test]
    fn swap_under_concurrent_readers_never_tears() {
        let cell = Arc::new(EpochCell::new(ModelEpoch::new(
            0,
            model_of(&[(0, 0), (0, 1)]),
            DriftConfig::default(),
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4u16)
            .map(|t| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let e = cell.load(t as usize);
                        // The epoch a reader observes is internally
                        // consistent: its drift tracker was built for its
                        // model (state counts agree) and ids never go
                        // backwards.
                        assert_eq!(e.drift.num_states(), e.model.num_states());
                        assert!(e.id >= last, "epochs are monotone per reader");
                        last = e.id;
                    }
                })
            })
            .collect();
        for id in 1..=50u32 {
            let pairs: Vec<(u16, u16)> = (0..=(id % 4) as u16).map(|t| (t, t)).collect();
            cell.swap(ModelEpoch::new(id, model_of(&pairs), DriftConfig::default()));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.current().id, 50);
    }
}
