//! A small open-addressed set of non-zero `usize` keys.
//!
//! Read and reader-registration sets in both STMs deduplicate locations by
//! their allocation address on *every* transactional read. The std
//! `HashSet<usize>` does that job with a SipHash invocation per probe —
//! measurable overhead on a path that is otherwise a couple of atomic
//! loads. [`AddrSet`] replaces it with Fibonacci (multiplicative) hashing
//! into a power-of-two slot array: one multiply, one shift, and a linear
//! probe. Keys must be non-zero, which addresses always are.

/// An insert-only set of non-zero `usize` keys (e.g. allocation addresses).
#[derive(Debug, Default)]
pub struct AddrSet {
    /// Power-of-two slot array; `0` marks an empty slot.
    slots: Vec<usize>,
    len: usize,
}

/// 2^64 / φ — the classic Fibonacci-hashing multiplier.
const PHI: usize = 0x9e37_79b9_7f4a_7c15_u64 as usize;

const INITIAL_SLOTS: usize = 16;

impl AddrSet {
    /// An empty set. Allocates nothing until the first insert.
    pub const fn new() -> Self {
        AddrSet {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every key, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.fill(0);
        self.len = 0;
    }

    #[inline]
    fn slot_of(key: usize, mask: usize) -> usize {
        key.wrapping_mul(PHI) >> 7 & mask
    }

    /// Whether `key` is in the set.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        debug_assert_ne!(key, 0, "AddrSet keys must be non-zero");
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::slot_of(key, mask);
        loop {
            match self.slots[i] {
                0 => return false,
                k if k == key => return true,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Insert `key`, returning `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, key: usize) -> bool {
        debug_assert_ne!(key, 0, "AddrSet keys must be non-zero");
        if self.slots.is_empty() {
            self.slots = vec![0; INITIAL_SLOTS];
        } else if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::slot_of(key, mask);
        loop {
            match self.slots[i] {
                0 => {
                    self.slots[i] = key;
                    self.len += 1;
                    return true;
                }
                k if k == key => return false,
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let doubled = vec![0; self.slots.len() * 2];
        let old = std::mem::replace(&mut self.slots, doubled);
        let mask = self.slots.len() - 1;
        for key in old {
            if key == 0 {
                continue;
            }
            let mut i = Self::slot_of(key, mask);
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = key;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = AddrSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(8));
        assert!(s.insert(8));
        assert!(!s.insert(8), "second insert is a no-op");
        assert!(s.contains(8));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = AddrSet::new();
        // Word-aligned-address-like keys, far more than INITIAL_SLOTS.
        let keys: Vec<usize> = (1..=500usize).map(|i| i * 8).collect();
        for &k in &keys {
            assert!(s.insert(k));
        }
        assert_eq!(s.len(), keys.len());
        for &k in &keys {
            assert!(s.contains(k));
            assert!(!s.insert(k));
        }
        assert!(!s.contains(4), "absent key");
    }

    #[test]
    fn clear_retains_capacity() {
        let mut s = AddrSet::new();
        for i in 1..=100usize {
            s.insert(i * 16);
        }
        let cap = s.slots.len();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.slots.len(), cap, "allocation kept");
        assert!(!s.contains(16));
        assert!(s.insert(16));
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        // Keys crafted to share a slot in a 16-slot table: same value
        // after the multiply-shift-mask. Brute-force a few.
        let mut s = AddrSet::new();
        let target = AddrSet::slot_of(8, INITIAL_SLOTS - 1);
        let colliders: Vec<usize> = (1..10_000usize)
            .map(|i| i * 8)
            .filter(|&k| AddrSet::slot_of(k, INITIAL_SLOTS - 1) == target)
            .take(4)
            .collect();
        assert!(colliders.len() >= 2, "need at least two colliding keys");
        for &k in &colliders {
            assert!(s.insert(k));
        }
        for &k in &colliders {
            assert!(s.contains(k));
        }
    }
}
