//! Deterministic, seeded fault injection for chaos testing the guided
//! STM stack.
//!
//! A [`FaultPlan`] is a *replayable* schedule of adverse events: forced
//! aborts and commit-time delays in the STM backends, gate-wait stalls
//! and state-transition storms in the guidance layer, model-file
//! corruption in `model_io`, and guardian-thread panics in `adapt`.
//! Each injection point is a named [`FaultSite`]; the code under test
//! holds an `Option<Arc<FaultPlan>>` and probes it with
//! [`FaultPlan::should_fire`] — the same zero-cost-when-disabled
//! pattern as telemetry: a disabled plan is `None` and costs one
//! branch per site.
//!
//! # Determinism
//!
//! Every decision is a pure function of `(seed, site, thread-slot, n)`
//! where `n` is the number of earlier probes of that site from that
//! thread slot. The generator is the same splitmix64 finalizer the
//! `schedule_replay` interleaver uses, so a chaos replay under a fixed
//! interleaving reproduces a bit-identical fault schedule: same probes
//! in the same order → same fires with the same entropy. Threads above
//! [`FAULT_SHARDS`] alias slots (like the tracker shards); per-slot
//! streams stay independent of each other and of probe order on other
//! slots.
//!
//! # Plan syntax
//!
//! [`FaultPlan::parse_spec`] accepts `SEED[:PLAN]` (the harness
//! `--chaos` argument). `SEED` is decimal or `0x` hex. `PLAN` is a
//! `+`-separated list of site names or plan aliases, each optionally
//! with a rate and budget: `site@PERMILLE` fires with probability
//! `PERMILLE/1000` per probe, and `site@PERMILLExBUDGET` additionally
//! disarms the site after `BUDGET` injections — how chaos runs model
//! "faults that stop", letting the breaker's half-open probe re-admit
//! guidance. Omitting `:PLAN` means `forced-aborts`.

use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread slots per site; threads above this alias (same policy as the
/// guidance tracker shards).
pub const FAULT_SHARDS: usize = 64;

/// Named injection points threaded through the stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// Force a TL2 transaction attempt to abort just before commit.
    Tl2Abort = 0,
    /// Busy-delay a TL2 attempt at commit time.
    Tl2CommitDelay = 1,
    /// Force a LibTM transaction attempt to abort just before commit.
    LibtmAbort = 2,
    /// Busy-delay a LibTM attempt at commit time.
    LibtmCommitDelay = 3,
    /// Busy-stall a thread entering the guidance gate.
    GateStall = 4,
    /// Flood the live drift tracker with off-model transitions and
    /// scramble the published TSA state word.
    TransitionStorm = 5,
    /// Corrupt an encoded model (bit flip, truncation, or a tampered
    /// thread-count header) before it is decoded.
    ModelCorrupt = 6,
    /// Panic the adapt background guardian thread.
    GuardianPanic = 7,
    /// Stall the network server's accept loop for one polling round
    /// (new connections queue in the kernel backlog).
    AcceptStall = 8,
    /// Clamp one socket read or write to a prefix (short I/O — the
    /// peer's bytes arrive fragmented across polling rounds).
    PartialIo = 9,
    /// Drop a session mid-frame: the server closes the connection with
    /// bytes still buffered, as if the peer vanished.
    Disconnect = 10,
    /// Corrupt a received byte run before it reaches the frame decoder
    /// (garbage on the wire; the codec must resynchronize or hang up).
    MalformedFrame = 11,
    /// Turn a session into a slow-loris reader: its write queue stops
    /// draining, so backpressure must cap the buffering and
    /// eventually hang up.
    SlowLoris = 12,
}

/// Number of distinct [`FaultSite`]s.
pub const NUM_SITES: usize = 13;

/// Every site, in discriminant order.
pub const ALL_SITES: [FaultSite; NUM_SITES] = [
    FaultSite::Tl2Abort,
    FaultSite::Tl2CommitDelay,
    FaultSite::LibtmAbort,
    FaultSite::LibtmCommitDelay,
    FaultSite::GateStall,
    FaultSite::TransitionStorm,
    FaultSite::ModelCorrupt,
    FaultSite::GuardianPanic,
    FaultSite::AcceptStall,
    FaultSite::PartialIo,
    FaultSite::Disconnect,
    FaultSite::MalformedFrame,
    FaultSite::SlowLoris,
];

impl FaultSite {
    /// Dense index of this site.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable name used in plan specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Tl2Abort => "tl2-abort",
            FaultSite::Tl2CommitDelay => "tl2-commit-delay",
            FaultSite::LibtmAbort => "libtm-abort",
            FaultSite::LibtmCommitDelay => "libtm-commit-delay",
            FaultSite::GateStall => "gate-stall",
            FaultSite::TransitionStorm => "transition-storm",
            FaultSite::ModelCorrupt => "model-corrupt",
            FaultSite::GuardianPanic => "guardian-panic",
            FaultSite::AcceptStall => "accept-stall",
            FaultSite::PartialIo => "partial-io",
            FaultSite::Disconnect => "disconnect",
            FaultSite::MalformedFrame => "malformed-frame",
            FaultSite::SlowLoris => "slow-loris",
        }
    }

    /// Inverse of [`FaultSite::name`].
    pub fn from_name(name: &str) -> Option<FaultSite> {
        ALL_SITES.iter().copied().find(|s| s.name() == name)
    }

    /// Default fire rate (permille) when a plan names the site without
    /// an explicit `@rate`.
    fn default_permille(self) -> u16 {
        match self {
            FaultSite::Tl2Abort | FaultSite::LibtmAbort => 125,
            FaultSite::Tl2CommitDelay | FaultSite::LibtmCommitDelay => 125,
            FaultSite::GateStall => 125,
            FaultSite::TransitionStorm => 60,
            FaultSite::ModelCorrupt => 1000,
            FaultSite::GuardianPanic => 250,
            FaultSite::AcceptStall => 60,
            FaultSite::PartialIo => 200,
            FaultSite::Disconnect => 15,
            FaultSite::MalformedFrame => 30,
            FaultSite::SlowLoris => 10,
        }
    }

    /// Default intensity: busy-wait iterations for delay/stall sites,
    /// synthetic transitions per storm. Zero for sites whose effect has
    /// no magnitude (aborts, corruption, panics).
    fn default_payload(self) -> u32 {
        match self {
            FaultSite::Tl2CommitDelay | FaultSite::LibtmCommitDelay => 2_000,
            FaultSite::GateStall => 4_000,
            FaultSite::TransitionStorm => 8,
            // Accept stalls are polling rounds skipped, not spins.
            FaultSite::AcceptStall => 2,
            // Slow-loris: polling rounds the session's reader stays
            // stuck (its write queue stops draining meanwhile).
            FaultSite::SlowLoris => 50,
            _ => 0,
        }
    }
}

/// Per-site arming: fire rate, intensity, and an optional injection
/// budget after which the site disarms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteConfig {
    /// Fire probability per probe, in thousandths. 0 disarms the site.
    pub permille: u16,
    /// Site-specific intensity (spin iterations / storm length); the
    /// actual fired value is deterministically perturbed in
    /// `[payload, 2·payload)`.
    pub payload: u32,
    /// Maximum injections before the site disarms; 0 = unlimited.
    pub budget: u64,
}

impl SiteConfig {
    fn disarmed() -> SiteConfig {
        SiteConfig { permille: 0, payload: 0, budget: 0 }
    }
}

/// One fired fault, as recorded by a logging plan (chaos replay tests
/// compare these sequences bit-for-bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Which site fired.
    pub site: FaultSite,
    /// Thread slot that probed.
    pub slot: usize,
    /// Probe ordinal within that `(site, slot)` stream.
    pub n: u64,
    /// Raw entropy drawn for the fire (drives mode/intensity choices).
    pub entropy: u64,
}

/// A fired fault handed back to the injection site.
#[derive(Clone, Copy, Debug)]
pub struct InjectedFault {
    /// Raw deterministic entropy; sites derive any further choices
    /// (corruption mode, offsets) from this.
    pub entropy: u64,
    /// Busy-wait iterations / storm length, already perturbed.
    pub spins: u32,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer (same mixer as the `schedule_replay`
/// interleaver). Public so other deterministic components — e.g. the
/// gate backoff jitter — share one well-tested mixer.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// A seeded, deterministic fault schedule. See the module docs for the
/// determinism argument and the plan syntax.
pub struct FaultPlan {
    seed: u64,
    sites: [SiteConfig; NUM_SITES],
    /// Probe ordinals, one padded cell per `(site, slot)`.
    counters: Vec<PaddedCounter>,
    /// Fired-injection counts per site.
    injected: [AtomicU64; NUM_SITES],
    /// When present, every fire is appended here (replay tests).
    log: Option<Mutex<Vec<FaultRecord>>>,
}

impl FaultPlan {
    /// A plan with explicit per-site arming.
    pub fn new(seed: u64, sites: [SiteConfig; NUM_SITES]) -> FaultPlan {
        FaultPlan {
            seed,
            sites,
            counters: (0..NUM_SITES * FAULT_SHARDS)
                .map(|_| PaddedCounter(AtomicU64::new(0)))
                .collect(),
            injected: Default::default(),
            log: None,
        }
    }

    /// Parse `SEED[:PLAN]` (the harness `--chaos` argument).
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let (seed_s, plan_s) = match spec.split_once(':') {
            Some((a, b)) => (a, b),
            None => (spec, "forced-aborts"),
        };
        let seed = parse_u64(seed_s).ok_or_else(|| format!("bad chaos seed: {seed_s:?}"))?;
        let mut sites = [SiteConfig::disarmed(); NUM_SITES];
        let mut arm = |site: FaultSite, permille: u16, budget: u64| {
            sites[site.index()] = SiteConfig {
                permille,
                payload: site.default_payload(),
                budget,
            };
        };
        let plan_s = if plan_s.is_empty() { "forced-aborts" } else { plan_s };
        for token in plan_s.split('+') {
            let (name, rate_s) = match token.split_once('@') {
                Some((n, r)) => (n, Some(r)),
                None => (token, None),
            };
            let (permille, budget) = match rate_s {
                None => (None, 0),
                Some(r) => {
                    let (p_s, b_s) = match r.split_once('x') {
                        Some((p, b)) => (p, Some(b)),
                        None => (r, None),
                    };
                    let p: u16 = p_s
                        .parse()
                        .ok()
                        .filter(|&p| p <= 1000)
                        .ok_or_else(|| format!("bad fault rate (0..=1000 permille): {token:?}"))?;
                    let b: u64 = match b_s {
                        None => 0,
                        Some(b) => b
                            .parse()
                            .map_err(|_| format!("bad fault budget: {token:?}"))?,
                    };
                    (Some(p), b)
                }
            };
            let one = |site: FaultSite| (site, permille.unwrap_or(site.default_permille()));
            let members: Vec<(FaultSite, u16)> = match name {
                "forced-aborts" => vec![one(FaultSite::Tl2Abort), one(FaultSite::LibtmAbort)],
                "commit-delays" => vec![
                    one(FaultSite::Tl2CommitDelay),
                    one(FaultSite::LibtmCommitDelay),
                ],
                "gate-stalls" => vec![one(FaultSite::GateStall)],
                "storms" => vec![one(FaultSite::TransitionStorm)],
                "corrupt-model" => vec![one(FaultSite::ModelCorrupt)],
                "guardian-panic" => vec![one(FaultSite::GuardianPanic)],
                "socket" => vec![
                    one(FaultSite::AcceptStall),
                    one(FaultSite::PartialIo),
                    one(FaultSite::Disconnect),
                    one(FaultSite::MalformedFrame),
                    one(FaultSite::SlowLoris),
                ],
                "all" => ALL_SITES.iter().map(|&s| one(s)).collect(),
                other => match FaultSite::from_name(other) {
                    Some(site) => vec![one(site)],
                    None => return Err(format!("unknown fault site or plan: {other:?}")),
                },
            };
            for (site, permille) in members {
                arm(site, permille, budget);
            }
        }
        Ok(FaultPlan::new(seed, sites))
    }

    /// Enable the fire log (used by replay tests to compare schedules).
    pub fn with_log(mut self) -> FaultPlan {
        self.log = Some(Mutex::new(Vec::new()));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The arming of `site`.
    pub fn site_config(&self, site: FaultSite) -> SiteConfig {
        self.sites[site.index()]
    }

    /// Whether `site` can ever fire under this plan (budget not
    /// considered).
    pub fn armed(&self, site: FaultSite) -> bool {
        self.sites[site.index()].permille > 0
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Snapshot of the fire log (empty unless [`FaultPlan::with_log`]).
    pub fn log(&self) -> Vec<FaultRecord> {
        self.log.as_ref().map(|l| l.lock().clone()).unwrap_or_default()
    }

    /// Deterministic draw for probe `n` of `(site, slot)`.
    fn draw(&self, site: FaultSite, slot: usize, n: u64) -> u64 {
        let stream = self.seed ^ mix64(((site.index() as u64) << 32) | (slot as u64 + 1));
        mix64(stream.wrapping_add(n.wrapping_add(1).wrapping_mul(GOLDEN)))
    }

    /// Probe `site` from `thread`. Returns the fired fault, or `None`
    /// (not armed / out of budget / this probe's draw says no).
    pub fn should_fire(&self, site: FaultSite, thread: usize) -> Option<InjectedFault> {
        let cfg = self.sites[site.index()];
        if cfg.permille == 0 {
            return None;
        }
        let slot = thread & (FAULT_SHARDS - 1);
        let n = self.counters[site.index() * FAULT_SHARDS + slot]
            .0
            .fetch_add(1, Ordering::Relaxed);
        let entropy = self.draw(site, slot, n);
        if entropy % 1000 >= cfg.permille as u64 {
            return None;
        }
        // Claim a budget slot *after* the draw so the per-slot streams
        // stay pure functions of (seed, site, slot, n).
        let fired_before = self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        if cfg.budget != 0 && fired_before >= cfg.budget {
            self.injected[site.index()].fetch_sub(1, Ordering::Relaxed);
            return None;
        }
        let spins = if cfg.payload == 0 {
            0
        } else {
            cfg.payload + ((entropy >> 32) % cfg.payload as u64) as u32
        };
        if let Some(log) = &self.log {
            log.lock().push(FaultRecord { site, slot, n, entropy });
        }
        Some(InjectedFault { entropy, spins })
    }

    /// Probe the model-corruption site and, on fire, deterministically
    /// mutate `bytes` — a bit flip, a truncation, or a tampered
    /// thread-count header byte. Returns the corruption mode applied.
    pub fn corrupt_model(&self, bytes: &mut Vec<u8>) -> Option<&'static str> {
        let fault = self.should_fire(FaultSite::ModelCorrupt, 0)?;
        if bytes.is_empty() {
            return Some("noop");
        }
        let e = fault.entropy;
        Some(match e % 3 {
            0 => {
                let off = ((e / 3) % bytes.len() as u64) as usize;
                bytes[off] ^= 1 << ((e >> 17) % 8);
                "bit-flip"
            }
            1 => {
                let keep = ((e / 3) % bytes.len() as u64) as usize;
                bytes.truncate(keep);
                "truncate"
            }
            _ => {
                // The thread-count varint sits right after MAGIC+version
                // (offset 5 in the v2 header); tampering with it must be
                // caught by the decoder's thread-count consistency check.
                let off = 5.min(bytes.len() - 1);
                bytes[off] = bytes[off].wrapping_add(1);
                "thread-count"
            }
        })
    }
}

/// Busy-wait `spins` iterations (the delay/stall payload).
#[inline]
pub fn spin_for(spins: u32) {
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seed_only_defaults_to_forced_aborts() {
        let p = FaultPlan::parse_spec("42").unwrap();
        assert_eq!(p.seed(), 42);
        assert!(p.armed(FaultSite::Tl2Abort));
        assert!(p.armed(FaultSite::LibtmAbort));
        assert!(!p.armed(FaultSite::GateStall));
        assert!(!p.armed(FaultSite::ModelCorrupt));
    }

    #[test]
    fn parse_hex_seed_and_explicit_plan() {
        let p = FaultPlan::parse_spec("0xfeed:gate-stalls+corrupt-model").unwrap();
        assert_eq!(p.seed(), 0xfeed);
        assert!(p.armed(FaultSite::GateStall));
        assert!(p.armed(FaultSite::ModelCorrupt));
        assert!(!p.armed(FaultSite::Tl2Abort));
    }

    #[test]
    fn parse_rates_and_budgets() {
        let p = FaultPlan::parse_spec("7:tl2-abort@500x100+storms@30").unwrap();
        let a = p.site_config(FaultSite::Tl2Abort);
        assert_eq!((a.permille, a.budget), (500, 100));
        let s = p.site_config(FaultSite::TransitionStorm);
        assert_eq!((s.permille, s.budget), (30, 0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse_spec("nope").is_err());
        assert!(FaultPlan::parse_spec("1:warp-core-breach").is_err());
        assert!(FaultPlan::parse_spec("1:tl2-abort@1001").is_err());
        assert!(FaultPlan::parse_spec("1:tl2-abort@5xq").is_err());
    }

    #[test]
    fn site_names_round_trip() {
        for site in ALL_SITES {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
        }
        assert_eq!(FaultSite::from_name("bogus"), None);
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let fire_seq = |seed: u64| -> Vec<FaultRecord> {
            let p = FaultPlan::parse_spec(&format!("{seed}:all")).unwrap().with_log();
            for t in 0..3usize {
                for _ in 0..200 {
                    p.should_fire(FaultSite::Tl2Abort, t);
                    p.should_fire(FaultSite::GateStall, t);
                }
            }
            p.log()
        };
        let a = fire_seq(1234);
        let b = fire_seq(1234);
        assert_eq!(a, b, "same seed must reproduce the fault schedule");
        assert!(!a.is_empty(), "default rates must fire within 600 probes");
        let c = fire_seq(4321);
        assert_ne!(a, c, "distinct seeds must yield distinct schedules");
    }

    #[test]
    fn per_slot_streams_are_independent_of_probe_interleaving() {
        let probes = |order: &[usize]| -> Vec<(usize, u64)> {
            let p = FaultPlan::parse_spec("99:gate-stalls@900").unwrap().with_log();
            for &t in order {
                p.should_fire(FaultSite::GateStall, t);
            }
            let mut per_slot: Vec<(usize, u64)> =
                p.log().iter().map(|r| (r.slot, r.entropy)).collect();
            per_slot.sort_unstable();
            per_slot
        };
        let a = probes(&[0, 1, 0, 1, 0, 1]);
        let b = probes(&[0, 0, 0, 1, 1, 1]);
        assert_eq!(a, b, "a slot's draws must not depend on other slots' probes");
    }

    #[test]
    fn budget_disarms_site() {
        let p = FaultPlan::parse_spec("5:tl2-abort@1000x3").unwrap();
        let mut fired = 0;
        for _ in 0..100 {
            if p.should_fire(FaultSite::Tl2Abort, 0).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3, "site must disarm after its budget");
        assert_eq!(p.injected(FaultSite::Tl2Abort), 3);
    }

    #[test]
    fn disarmed_site_never_fires_or_counts() {
        let p = FaultPlan::parse_spec("5:gate-stalls").unwrap();
        for _ in 0..1000 {
            assert!(p.should_fire(FaultSite::Tl2Abort, 0).is_none());
        }
        assert_eq!(p.injected(FaultSite::Tl2Abort), 0);
        assert!(p.injected(FaultSite::GateStall) == 0, "unprobed site");
    }

    #[test]
    fn fire_rate_tracks_permille() {
        let p = FaultPlan::parse_spec("77:tl2-abort@250").unwrap();
        let n = 10_000;
        for _ in 0..n {
            p.should_fire(FaultSite::Tl2Abort, 0);
        }
        let fired = p.injected(FaultSite::Tl2Abort) as f64;
        let rate = fired / n as f64;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "observed fire rate {rate} too far from 0.25"
        );
    }

    #[test]
    fn delay_payload_is_bounded_and_deterministic() {
        let p = FaultPlan::parse_spec("3:commit-delays@1000").unwrap();
        let f1 = p.should_fire(FaultSite::Tl2CommitDelay, 0).unwrap();
        let base = FaultSite::Tl2CommitDelay.default_payload();
        assert!(f1.spins >= base && f1.spins < 2 * base);
        let q = FaultPlan::parse_spec("3:commit-delays@1000").unwrap();
        let f2 = q.should_fire(FaultSite::Tl2CommitDelay, 0).unwrap();
        assert_eq!(f1.spins, f2.spins);
    }
}
