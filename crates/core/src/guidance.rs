//! Guided execution — the gate consulted by the STM at transaction begin.
//!
//! An STM integrates with the framework through [`GuidanceHook`]:
//!
//! * [`GuidanceHook::gate`] is called before each transaction attempt. In
//!   guided mode it blocks the caller while `<txn,thread>` does not appear
//!   in any tuple of a high-probability destination state of the *current*
//!   state, re-examining the (possibly changed) current state up to `k`
//!   times before releasing the thread anyway (progress guarantee).
//! * [`GuidanceHook::on_abort`] reports a rolled-back attempt.
//! * [`GuidanceHook::on_commit`] reports a successful commit; the tracker
//!   drains the aborts observed since the previous commit into a new
//!   [`StateKey`] and advances the current state.
//!
//! Three implementations are provided: [`NoopHook`] (default execution),
//! [`RecorderHook`] (profiling / non-determinism measurement), and
//! [`GuidedHook`] (model-driven gating, which also records so that
//! non-determinism under guidance can be measured — the paper's `ND_mcmc`).
//!
//! ## Hot-path architecture
//!
//! The hooks sit on **every** transaction begin/abort/commit, so the
//! tracker is built to be contention-free and allocation-free at steady
//! state:
//!
//! * **Aborts** push into one of [`TRACKER_SHARDS`] cache-padded per-thread
//!   buffers selected by the aborting thread's id — an uncontended lock
//!   acquisition (a single CAS) plus a `Vec` push; no global lock is
//!   touched and no other thread's cache line is written.
//! * **Commits** take the *single* commit-side lock, sweep the shards into
//!   a reused scratch buffer, canonicalize it in place, classify the state
//!   (model lookup by borrowed slice, via precomputed 64-bit hashes — see
//!   [`crate::tsa`]), and append one owned [`StateKey`] to the recorded
//!   Tseq. The common solo state (no aborts since the last commit)
//!   allocates nothing.
//!
//! The windowed attribution semantics are unchanged from the original
//! double-mutex tracker: every abort is grouped with the next commit, and
//! the recorded per-run multiset of states is identical (the equivalence
//! stress test in `tests/tracker_equivalence.rs` pins this down).
//!
//! ## Static vs adaptive models
//!
//! A [`GuidedHook`] gates against either a **fixed** model (the offline
//! profile→build pipeline) or an **adaptive** one managed by
//! [`ModelManager`], which regenerates the model online when the drift
//! ladder says it went stale and hot-swaps it without blocking readers
//! (see [`crate::adapt`]). In adaptive mode the current-state word is
//! tagged with the model's epoch: state ids are model-relative, so a
//! state recorded under a superseded model must not be interpreted by the
//! new one — a tag mismatch degrades the state to "unknown", which fails
//! open exactly like an unmodeled state.

use crate::adapt::{pack_state, unpack_state, AdaptConfig, ModelManager};
use crate::breaker::{Breaker, BreakerState};
use crate::config::GuidanceConfig;
use crate::drift::{DriftTracker, ModelDrift};
use crate::events::AbortCause;
use crate::faultinject::{mix64, spin_for, FaultPlan, FaultSite};
use crate::ids::Pair;
use crate::sync::Mutex;
use crate::telemetry::{GateOutcome, Telemetry, TraceKind};
use crate::tsa::{GuidedModel, StateId};
use crate::tss::StateKey;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "current state not present in the model".
const UNKNOWN: u32 = u32::MAX;

/// The current-state word of a fresh (or reset) hook: epoch 0, state
/// unknown. The state half short-circuits every consumer, so the epoch
/// half never matters for this value.
const UNKNOWN_WORD: u64 = UNKNOWN as u64;

/// Number of per-thread abort buffers (power of two; thread ids map to
/// shards by masking). 64 covers every thread count the experiments use
/// without aliasing; beyond that, aliased threads merely share a buffer.
const TRACKER_SHARDS: usize = 64;

/// Cap on the gate's exponential backoff: a wait round busy-spins at most
/// `2 * (1 << BACKOFF_CAP)` iterations before yielding, keeping the
/// worst-case poll latency bounded while still spreading contending
/// re-examinations apart.
const BACKOFF_CAP: u32 = 6;

/// Callbacks an STM invokes around each transaction attempt.
///
/// Implementations must be cheap and thread-safe; every worker thread calls
/// into the same hook instance.
pub trait GuidanceHook: Send + Sync {
    /// Called before a transaction attempt begins. May block (guided mode).
    fn gate(&self, _who: Pair) {}
    /// Called when an attempt rolls back.
    fn on_abort(&self, _who: Pair, _cause: AbortCause) {}
    /// Called when an attempt commits.
    fn on_commit(&self, _who: Pair) {}
}

/// The default hook: plain STM execution, zero overhead.
#[derive(Default, Clone, Copy, Debug)]
pub struct NoopHook;

impl GuidanceHook for NoopHook {}

/// One per-thread abort buffer, padded to its own cache line so abort
/// traffic from different threads never false-shares.
#[derive(Default)]
#[repr(align(128))]
struct Shard {
    pending: Mutex<Vec<Pair>>,
}

/// Commit-side state, all behind one lock: the scratch buffer commits
/// drain into (reused, so steady-state commits never allocate it) and
/// the recorded Tseq. In adaptive mode the bounded sliding window model
/// rebuilds train on is *derived* from `recorded` — every commit pushes
/// exactly one key, so the window is always the last `window_cap`
/// entries. Snapshots slice that suffix on demand; the commit itself
/// does no window bookkeeping at all, so adaptation adds zero work (not
/// even a clone) to the hot path.
#[derive(Default)]
struct CommitSide {
    scratch: Vec<Pair>,
    recorded: Vec<StateKey>,
    /// Sliding-window capacity; 0 disables window snapshots.
    window_cap: usize,
}

/// Shared windowed-attribution tracker: groups the aborts seen since the
/// previous commit with the next commit to form a [`StateKey`].
///
/// See the module docs for the sharded hot-path design. The `occupied`
/// bitmap (bit *i* set ⇒ shard *i* may hold pending aborts) lets the
/// commit drain visit only shards that actually received aborts since the
/// last drain — the common low-conflict commit swaps one word and touches
/// no shard at all.
struct StateTracker {
    shards: Box<[Shard]>,
    occupied: AtomicU64,
    commit: Mutex<CommitSide>,
}

impl Default for StateTracker {
    fn default() -> Self {
        StateTracker {
            shards: (0..TRACKER_SHARDS).map(|_| Shard::default()).collect(),
            occupied: AtomicU64::new(0),
            commit: Mutex::new(CommitSide::default()),
        }
    }
}

impl StateTracker {
    /// Record an abort: a push into the aborting thread's own shard, plus
    /// an occupancy-bit publication when the shard transitions from empty
    /// (so repeat aborts within one window never touch the shared word).
    #[inline]
    fn abort(&self, who: Pair) {
        let idx = who.thread.index() & (TRACKER_SHARDS - 1);
        let was_empty = {
            let mut buf = self.shards[idx].pending.lock();
            let was_empty = buf.is_empty();
            buf.push(who);
            was_empty
        };
        // Published after the push: a commit that swaps the bitmap in
        // between simply leaves this abort for the next window, which is
        // valid windowed attribution. The bit can never be lost — either
        // this fetch_or lands it, or a concurrent drain already holds the
        // shard lock and empties the buffer first, after which the next
        // push re-publishes.
        if was_empty {
            self.occupied.fetch_or(1 << idx, Ordering::Release);
        }
    }

    /// Form the state for a commit, record it, and hand the canonicalized
    /// window to `classify` (borrowed — no allocation) before it is
    /// materialized into the recorded Tseq. Returns `classify`'s result.
    ///
    /// The whole drain-classify-record sequence runs under the single
    /// commit-side lock, so concurrent committers observe disjoint,
    /// complete windows.
    fn commit_with<R>(&self, who: Pair, classify: impl FnOnce(&[Pair], Pair) -> R) -> R {
        let mut side = self.commit.lock();
        let side = &mut *side;
        side.scratch.clear();
        let mut occupied = self.occupied.swap(0, Ordering::AcqRel);
        while occupied != 0 {
            let idx = occupied.trailing_zeros() as usize;
            occupied &= occupied - 1;
            side.scratch.append(&mut self.shards[idx].pending.lock());
        }
        side.scratch.sort_unstable();
        side.scratch.dedup();
        let result = classify(&side.scratch, who);
        side.recorded.push(StateKey::from_sorted(&side.scratch, who));
        result
    }

    /// Enable (cap > 0) or disable the sliding window. Called once at
    /// hook construction, before any commit traffic.
    fn set_window_cap(&self, cap: usize) {
        self.commit.lock().window_cap = cap;
    }

    /// Copy out the current sliding window — the most recent `window_cap`
    /// recorded states, oldest first (empty when the window is disabled).
    fn window_snapshot(&self) -> Vec<StateKey> {
        let side = self.commit.lock();
        if side.window_cap == 0 {
            return Vec::new();
        }
        let start = side.recorded.len().saturating_sub(side.window_cap);
        side.recorded[start..].to_vec()
    }

    fn take_run(&self) -> Vec<StateKey> {
        let mut side = self.commit.lock();
        self.occupied.store(0, Ordering::Release);
        for shard in self.shards.iter() {
            shard.pending.lock().clear();
        }
        side.scratch.clear();
        std::mem::take(&mut side.recorded)
    }
}

/// Profiling hook: records the transaction sequence without gating.
///
/// Used both for model generation (the paper's `mcmc_data`) and for
/// measuring the non-determinism of default execution (`ND_only`).
#[derive(Default)]
pub struct RecorderHook {
    tracker: StateTracker,
}

impl RecorderHook {
    /// Create a fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain and return the recorded transaction sequence for the run that
    /// just finished, resetting the recorder for the next run.
    pub fn take_run(&self) -> Vec<StateKey> {
        self.tracker.take_run()
    }
}

impl GuidanceHook for RecorderHook {
    fn on_abort(&self, who: Pair, _cause: AbortCause) {
        self.tracker.abort(who);
    }

    fn on_commit(&self, who: Pair) {
        self.tracker.commit_with(who, |_, _| ());
    }
}

/// Counters describing what the gate did during a guided run.
///
/// The three outcome counters partition gate calls:
/// `passed + waited + released` equals the number of calls.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct GateStats {
    /// Gate calls that passed immediately (allowed or unknown state).
    pub passed: u64,
    /// Gate calls that waited at least one retry before passing.
    pub waited: u64,
    /// Gate calls that waited and were then released by the `k`-retry
    /// progress escape without ever becoming allowed.
    pub released: u64,
    /// Commits that moved the system to a state absent from the model.
    pub unknown_states: u64,
}

impl GateStats {
    /// Accumulate another hook's counters into this one (used when a
    /// measurement phase runs one hook per run and reports the total).
    pub fn merge(&mut self, other: &GateStats) {
        self.passed += other.passed;
        self.waited += other.waited;
        self.released += other.released;
        self.unknown_states += other.unknown_states;
    }
}

/// Where a [`GuidedHook`] gets its model from.
enum ModelSource {
    /// One model for the hook's whole lifetime (offline pipeline).
    Fixed(Arc<GuidedModel>),
    /// Epoch-managed model that may be hot-swapped while gating.
    Adaptive(Arc<ModelManager>),
}

/// Model-driven gating hook (Section V of the paper).
pub struct GuidedHook {
    source: ModelSource,
    config: GuidanceConfig,
    tracker: StateTracker,
    /// Current state, packed as `(epoch << 32) | state_id` (see
    /// [`crate::adapt::pack_state`]); the state half is [`UNKNOWN`] when
    /// the current state is absent from the (epoch's) model. Fixed-model
    /// hooks always use epoch 0.
    current: AtomicU64,
    passed: AtomicU64,
    waited: AtomicU64,
    released: AtomicU64,
    unknown_states: AtomicU64,
    /// Optional telemetry sink: gate outcomes feed the per-thread
    /// counters, commits feed TSA state-transition trace events. `None`
    /// keeps the hot path at one extra predictable branch per call.
    telemetry: Option<Arc<Telemetry>>,
    /// Optional model-drift accumulator fed every observed state
    /// transition (including self-transitions, which the profiled TSA
    /// also counts). `None` costs one predictable branch per commit.
    /// Fixed-model hooks only; adaptive hooks carry a tracker per epoch.
    drift: Option<Arc<DriftTracker>>,
    /// Optional guidance circuit breaker. While Open the gate is a
    /// single load + early return (fail-open unguided execution); the
    /// breaker's window/watchdog bookkeeping rides on the outcome and
    /// abort/commit notifications. `None` costs one predictable branch.
    breaker: Option<Arc<Breaker>>,
    /// Optional deterministic fault plan (chaos mode): probes the
    /// gate-stall and transition-storm sites. `None` costs one
    /// predictable branch per site, same as `telemetry`.
    faults: Option<Arc<FaultPlan>>,
}

impl GuidedHook {
    /// Create a guided hook over a trained model.
    pub fn new(model: Arc<GuidedModel>, config: GuidanceConfig) -> Self {
        Self::with_observability(model, config, None, None)
    }

    /// Create a guided hook that additionally reports gate outcomes and
    /// TSA state transitions to `telemetry`.
    pub fn with_telemetry(
        model: Arc<GuidedModel>,
        config: GuidanceConfig,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Self {
        Self::with_observability(model, config, telemetry, None)
    }

    /// Create a guided hook with full observability: telemetry (gate
    /// outcomes + trace events) and/or a model-drift tracker receiving
    /// every observed transition. The tracker must be built over the
    /// same model (state ids are shared); register the same `Arc` with
    /// [`Telemetry::attach_drift`] to have snapshots carry the drift
    /// report.
    pub fn with_observability(
        model: Arc<GuidedModel>,
        config: GuidanceConfig,
        telemetry: Option<Arc<Telemetry>>,
        drift: Option<Arc<DriftTracker>>,
    ) -> Self {
        Self::with_robustness(model, config, telemetry, drift, None, None)
    }

    /// Create a guided hook with observability plus the robustness layer:
    /// a circuit `breaker` that degrades gating to fail-open unguided
    /// execution when the model misbehaves, and/or a deterministic fault
    /// plan (`faults`) that exercises the gate-stall and transition-storm
    /// chaos sites. The drift tracker (when given alongside the breaker)
    /// is attached to the breaker so Fresh verdicts veto model-health
    /// trips.
    pub fn with_robustness(
        model: Arc<GuidedModel>,
        config: GuidanceConfig,
        telemetry: Option<Arc<Telemetry>>,
        drift: Option<Arc<DriftTracker>>,
        breaker: Option<Arc<Breaker>>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        if let (Some(b), Some(d)) = (&breaker, &drift) {
            b.attach_drift(Arc::clone(d));
        }
        GuidedHook {
            source: ModelSource::Fixed(model),
            config,
            tracker: StateTracker::default(),
            current: AtomicU64::new(UNKNOWN_WORD),
            passed: AtomicU64::new(0),
            waited: AtomicU64::new(0),
            released: AtomicU64::new(0),
            unknown_states: AtomicU64::new(0),
            telemetry,
            drift,
            breaker,
            faults,
        }
    }

    /// Create a guided hook whose model regenerates online: `model`
    /// seeds epoch 0, commits feed a bounded sliding window, and a
    /// [`ModelManager`] rebuilds + hot-swaps the model when the drift
    /// ladder reaches Drifting/Stale. When `adapt.background` is set a
    /// guardian thread polls the verdict; otherwise call
    /// [`ModelManager::maybe_regenerate`] (via [`GuidedHook::manager`])
    /// at the cadence you control — tests use this for deterministic
    /// swap points.
    ///
    /// Swap events and the current epoch's drift report flow into
    /// `telemetry` when given.
    pub fn adaptive(
        model: Arc<GuidedModel>,
        config: GuidanceConfig,
        adapt: AdaptConfig,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Arc<Self> {
        Self::adaptive_with_robustness(model, config, adapt, telemetry, None, None)
    }

    /// [`GuidedHook::adaptive`] plus the robustness layer (see
    /// [`GuidedHook::with_robustness`]). The breaker follows the live
    /// epoch: every hot-swap re-attaches the new generation's drift
    /// tracker, and the guardian thread is panic-isolated against the
    /// fault plan's guardian-panic site.
    pub fn adaptive_with_robustness(
        model: Arc<GuidedModel>,
        config: GuidanceConfig,
        adapt: AdaptConfig,
        telemetry: Option<Arc<Telemetry>>,
        breaker: Option<Arc<Breaker>>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Arc<Self> {
        let manager = ModelManager::with_robustness(
            model,
            config,
            adapt,
            telemetry.clone(),
            breaker.clone(),
            faults.clone(),
        );
        let hook = Arc::new(GuidedHook {
            source: ModelSource::Adaptive(Arc::clone(&manager)),
            config,
            tracker: StateTracker::default(),
            current: AtomicU64::new(UNKNOWN_WORD),
            passed: AtomicU64::new(0),
            waited: AtomicU64::new(0),
            released: AtomicU64::new(0),
            unknown_states: AtomicU64::new(0),
            telemetry,
            drift: None,
            breaker,
            faults,
        });
        hook.tracker.set_window_cap(adapt.window);
        if adapt.background {
            manager.spawn_guardian(&hook);
        }
        hook
    }

    /// The attached circuit breaker, if any.
    pub fn breaker(&self) -> Option<&Arc<Breaker>> {
        self.breaker.as_ref()
    }

    /// The model manager, when this hook is adaptive.
    pub fn manager(&self) -> Option<&Arc<ModelManager>> {
        match &self.source {
            ModelSource::Fixed(_) => None,
            ModelSource::Adaptive(m) => Some(m),
        }
    }

    /// The attached drift tracker, if any. Fixed-model hooks only: an
    /// adaptive hook owns one tracker per epoch — use
    /// [`GuidedHook::drift_report`] or [`ModelManager::epoch`].
    pub fn drift_tracker(&self) -> Option<&Arc<DriftTracker>> {
        self.drift.as_ref()
    }

    /// Snapshot the model-drift comparison: the attached tracker's (fixed
    /// mode, `None` when none attached) or the current epoch's (adaptive).
    pub fn drift_report(&self) -> Option<ModelDrift> {
        match &self.source {
            ModelSource::Fixed(_) => self.drift.as_ref().map(|d| d.report()),
            ModelSource::Adaptive(m) => Some(m.epoch().drift.report()),
        }
    }

    /// The model currently gating: the fixed model, or the live epoch's.
    pub fn model(&self) -> Arc<GuidedModel> {
        match &self.source {
            ModelSource::Fixed(m) => Arc::clone(m),
            ModelSource::Adaptive(m) => Arc::clone(&m.epoch().model),
        }
    }

    /// Copy of the sliding window rebuilds train on (oldest first; empty
    /// for fixed-model hooks, where the window is disabled).
    pub fn window_snapshot(&self) -> Vec<StateKey> {
        self.tracker.window_snapshot()
    }

    /// The `(epoch, state)` tag of the current-state word (diagnostic;
    /// the schedule-replay suite uses it to prove no mixed-epoch reads).
    /// The state half is `u32::MAX` when the current state is unknown.
    pub fn current_tag(&self) -> (u32, u32) {
        unpack_state(self.current.load(Ordering::Acquire))
    }

    /// Drain the recorded state sequence (for non-determinism measurement
    /// under guidance), resetting for the next run. Also resets the current
    /// state (and the sliding window) so runs do not leak guidance context
    /// into each other.
    pub fn take_run(&self) -> Vec<StateKey> {
        self.current.store(UNKNOWN_WORD, Ordering::Release);
        self.tracker.take_run()
    }

    /// Gate behaviour counters accumulated so far.
    pub fn stats(&self) -> GateStats {
        GateStats {
            passed: self.passed.load(Ordering::Relaxed),
            waited: self.waited.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            unknown_states: self.unknown_states.load(Ordering::Relaxed),
        }
    }

    /// Whether `who` may proceed from the state packed in `word`, judged
    /// by `model` (which is the `epoch` generation). Three ways to pass:
    /// the state is unknown, the state was recorded under a *different*
    /// epoch (model-relative ids must not cross generations — degrade to
    /// unknown, fail open), or the model allows the pair.
    #[inline]
    fn allowed_word(word: u64, model: &GuidedModel, epoch: u32, who: Pair) -> bool {
        let (e, s) = unpack_state(word);
        s == UNKNOWN || e != epoch || model.is_allowed(StateId(s), who)
    }

    /// Count a gate resolution in the local counters and, when attached,
    /// the telemetry cells and the breaker's health window. A trip
    /// reported back by the breaker fails the gate open *immediately*:
    /// one store of the unknown word releases every thread still spinning
    /// on the old current state (unknown always passes).
    #[inline]
    fn count_outcome(&self, who: Pair, outcome: GateOutcome) {
        let counter = match outcome {
            GateOutcome::Passed => &self.passed,
            GateOutcome::Waited => &self.waited,
            GateOutcome::Released => &self.released,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.record_gate_outcome(who, outcome);
        }
        if let Some(b) = &self.breaker {
            let released = matches!(outcome, GateOutcome::Released);
            if let Some(tr) = b.note_gate(who.thread.index(), released) {
                if tr.to == BreakerState::Open {
                    self.current.store(UNKNOWN_WORD, Ordering::Release);
                }
            }
        }
    }

    /// The gate loop, parameterized by the model generation resolved at
    /// call entry. A concurrent hot-swap cannot strand a waiter: commits
    /// under the new generation re-tag the current word, the tag mismatch
    /// reads as unknown, and unknown always passes.
    fn gate_with(&self, who: Pair, model: &GuidedModel, epoch: u32) {
        let mut waited = false;
        for retry in 0..self.config.k_retries {
            let cur = self.current.load(Ordering::Acquire);
            if Self::allowed_word(cur, model, epoch, who) {
                self.count_outcome(
                    who,
                    if waited { GateOutcome::Waited } else { GateOutcome::Passed },
                );
                return;
            }
            // Wait (bounded) for a concurrent commit to change the current
            // state, then loop to re-examine from the new state. Each
            // round busy-spins `base + jitter` iterations before yielding:
            // the exponential base keeps short waits responsive and long
            // waits cheap, and the jitter — a pure hash of (pair, retry,
            // round), no RNG state — decorrelates threads that blocked on
            // the same state so they do not re-poll in lockstep.
            waited = true;
            for round in 0..self.config.wait_spins {
                if self.current.load(Ordering::Acquire) != cur {
                    break;
                }
                let base = 1u64 << (round as u32).min(BACKOFF_CAP);
                let jitter = mix64(
                    ((who.packed() as u64) << 32) ^ ((retry as u64) << 16) ^ round as u64,
                ) % base;
                spin_for((base + jitter) as u32);
                std::thread::yield_now();
            }
        }
        // Retry budget exhausted. Re-examine once — the final wait may have
        // ended on a state change whose new state allows us — and otherwise
        // release to guarantee progress.
        if Self::allowed_word(self.current.load(Ordering::Acquire), model, epoch, who) {
            self.count_outcome(
                who,
                if waited { GateOutcome::Waited } else { GateOutcome::Passed },
            );
        } else {
            self.count_outcome(who, GateOutcome::Released);
        }
    }

    /// The commit path, parameterized by the model generation resolved at
    /// call entry. `drift` is the tracker the transition feeds (the
    /// epoch's own in adaptive mode): when the displaced previous state
    /// carries a different epoch tag it is reported as unknown-origin,
    /// because its id means nothing under `model`.
    fn commit_with_model(
        &self,
        who: Pair,
        model: &GuidedModel,
        epoch: u32,
        drift: Option<&DriftTracker>,
    ) {
        let id = self
            .tracker
            .commit_with(who, |aborts, commit| model.id_of_parts(aborts, commit));
        let next = match id {
            Some(id) => id.0,
            None => {
                self.unknown_states.fetch_add(1, Ordering::Relaxed);
                UNKNOWN
            }
        };
        // Only observers need the previous state; the observability-off
        // path keeps the plain release store (an xchg here costs a locked
        // RMW on a line every committer writes).
        if self.telemetry.is_some() || drift.is_some() {
            let prev_word = self.current.swap(pack_state(epoch, next), Ordering::AcqRel);
            let (prev_epoch, prev_state) = unpack_state(prev_word);
            let prev = if prev_epoch == epoch { prev_state } else { UNKNOWN };
            if let Some(d) = drift {
                d.record(prev, next);
            }
            if let Some(t) = &self.telemetry {
                if prev != next {
                    t.trace(who, TraceKind::StateTransition { from: prev, to: next });
                }
            }
        } else {
            self.current.store(pack_state(epoch, next), Ordering::Release);
        }
        // Chaos site: a transition storm floods the drift tracker with
        // off-model transitions and scrambles the current state to
        // unknown — the failure shape of an application phase change the
        // model has never seen. No trace events are fabricated (the
        // analyzer cross-checks traces against the recorded Tseq).
        if let Some(f) = &self.faults {
            if let Some(fault) = f.should_fire(FaultSite::TransitionStorm, who.thread.index()) {
                if let Some(d) = drift {
                    for _ in 0..fault.spins.max(1) {
                        d.record(next, UNKNOWN);
                    }
                }
                self.current.store(UNKNOWN_WORD, Ordering::Release);
            }
        }
    }
}

impl GuidanceHook for GuidedHook {
    fn gate(&self, who: Pair) {
        // Chaos site: stall this thread at the gate, as if it lost its
        // timeslice between the epoch read and the state examination.
        if let Some(f) = &self.faults {
            if let Some(fault) = f.should_fire(FaultSite::GateStall, who.thread.index()) {
                spin_for(fault.spins);
            }
        }
        // Fail-open: while the breaker is Open the gate is this one load
        // — no model lookup, no waiting. The outcome still feeds
        // count_outcome so the breaker can count down its cooldown and
        // move to Half-Open.
        if let Some(b) = &self.breaker {
            if b.bypass() {
                self.count_outcome(who, GateOutcome::Passed);
                return;
            }
        }
        match &self.source {
            ModelSource::Fixed(model) => self.gate_with(who, model, 0),
            ModelSource::Adaptive(mgr) => {
                // One epoch resolution per call: on the steady path this
                // is two loads into the caller's own cache slot.
                let epoch = mgr.cell().load(who.thread.index());
                self.gate_with(who, &epoch.model, epoch.id);
            }
        }
    }

    fn on_abort(&self, who: Pair, _cause: AbortCause) {
        self.tracker.abort(who);
        if let Some(b) = &self.breaker {
            b.note_abort(who.thread.index());
        }
    }

    fn on_commit(&self, who: Pair) {
        match &self.source {
            ModelSource::Fixed(model) => {
                self.commit_with_model(who, model, 0, self.drift.as_deref());
            }
            ModelSource::Adaptive(mgr) => {
                let epoch = mgr.cell().load(who.thread.index());
                self.commit_with_model(who, &epoch.model, epoch.id, Some(&epoch.drift));
            }
        }
        if let Some(b) = &self.breaker {
            b.note_commit(who.thread.index());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DriftVerdict;
    use crate::ids::{ThreadId, TxnId};
    use crate::tsa::Tsa;

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    #[test]
    fn recorder_windows_aborts_into_next_commit() {
        let rec = RecorderHook::new();
        rec.on_abort(p(0, 1), AbortCause::Validation);
        rec.on_abort(p(0, 2), AbortCause::Validation);
        rec.on_commit(p(1, 3));
        rec.on_commit(p(1, 4));
        let run = rec.take_run();
        assert_eq!(run.len(), 2);
        assert_eq!(run[0], StateKey::new(vec![p(0, 1), p(0, 2)], p(1, 3)));
        assert_eq!(run[1], StateKey::solo(p(1, 4)));
        assert!(rec.take_run().is_empty(), "take_run resets");
    }

    #[test]
    fn aliased_threads_share_a_shard_without_loss() {
        // Thread ids TRACKER_SHARDS apart alias to one shard; the window
        // must still contain both aborts.
        let rec = RecorderHook::new();
        let far = TRACKER_SHARDS as u16;
        rec.on_abort(p(0, 1), AbortCause::Validation);
        rec.on_abort(p(0, 1 + far), AbortCause::Validation);
        rec.on_commit(p(1, 0));
        let run = rec.take_run();
        assert_eq!(run, vec![StateKey::new(vec![p(0, 1), p(0, 1 + far)], p(1, 0))]);
    }

    fn two_state_model() -> Arc<GuidedModel> {
        // A -> B dominates; A -> C is rare. B commits p(0,1), C commits p(0,2).
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let c = StateKey::solo(p(0, 2));
        let mut run = Vec::new();
        for i in 0..20 {
            run.push(a.clone());
            run.push(if i == 0 { c.clone() } else { b.clone() });
        }
        let tsa = Tsa::from_runs(&[run]);
        Arc::new(GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(1.0)))
    }

    #[test]
    fn gate_passes_unknown_state() {
        let hook = GuidedHook::new(two_state_model(), GuidanceConfig::default());
        // Fresh hook: current state unknown, everything passes immediately.
        hook.gate(p(9, 9));
        assert_eq!(hook.stats().passed, 1);
        assert_eq!(hook.stats().released, 0);
    }

    #[test]
    fn gate_passes_allowed_pair_after_commit() {
        let model = two_state_model();
        let hook = GuidedHook::new(model.clone(), GuidanceConfig::default());
        // Commit p(0,0): current becomes state A, whose only kept
        // destination (Tfactor=1) is B = {<a1>}.
        hook.on_commit(p(0, 0));
        hook.gate(p(0, 1)); // allowed: commits B
        assert_eq!(hook.stats().passed, 1);
    }

    #[test]
    fn gate_releases_disallowed_pair_after_k_retries() {
        let model = two_state_model();
        let cfg = GuidanceConfig {
            k_retries: 2,
            wait_spins: 4,
            ..GuidanceConfig::default()
        };
        let hook = GuidedHook::new(model, cfg);
        hook.on_commit(p(0, 0)); // current = A; only B allowed
        hook.gate(p(0, 2)); // C's committer: low probability, must wait then release
        let stats = hook.stats();
        assert_eq!(stats.released, 1);
        assert_eq!(stats.passed, 0);
        assert_eq!(stats.waited, 0, "released calls are not double-counted");
    }

    #[test]
    fn gate_recounts_allowance_after_final_wait() {
        // With a single retry whose wait ends on a state change, the gate
        // must re-examine the new state instead of releasing blindly: the
        // new state is UNKNOWN here, so the call counts as waited-then-
        // passed, not released.
        let model = two_state_model();
        let cfg = GuidanceConfig {
            k_retries: 1,
            wait_spins: 1_000_000,
            ..GuidanceConfig::default()
        };
        let hook = Arc::new(GuidedHook::new(model, cfg));
        hook.on_commit(p(0, 0)); // current = A; only p(0,1) allowed
        let h2 = Arc::clone(&hook);
        let waiter = std::thread::spawn(move || h2.gate(p(0, 2)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        hook.on_commit(p(5, 5)); // unknown state: everything allowed
        waiter.join().unwrap();
        let stats = hook.stats();
        assert_eq!(stats.waited, 1, "final re-examination sees the new state");
        assert_eq!(stats.released, 0);
    }

    #[test]
    fn gate_unblocks_when_state_changes() {
        use std::sync::atomic::AtomicBool;
        let model = two_state_model();
        let cfg = GuidanceConfig {
            k_retries: 1_000_000,
            wait_spins: 1_000_000,
            ..GuidanceConfig::default()
        };
        let hook = Arc::new(GuidedHook::new(model, cfg));
        hook.on_commit(p(0, 0)); // current = A; only p(0,1) allowed
        let done = Arc::new(AtomicBool::new(false));
        let h2 = Arc::clone(&hook);
        let d2 = Arc::clone(&done);
        let waiter = std::thread::spawn(move || {
            h2.gate(p(0, 2)); // blocked until state changes
            d2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Commit p(0,2) is not what unblocks — committing p(0,1) moves the
        // current state to B, which is unmodeled-source (terminal) => its
        // destination set is empty... so instead move to an UNKNOWN state,
        // which always unblocks.
        hook.on_commit(p(5, 5));
        waiter.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        assert_eq!(hook.stats().unknown_states, 1);
    }

    #[test]
    fn commit_to_modeled_state_updates_current() {
        let model = two_state_model();
        let hook = GuidedHook::new(model.clone(), GuidanceConfig::default());
        hook.on_commit(p(0, 1)); // state B exists in model
        assert_ne!(hook.current_tag().1, UNKNOWN);
        assert_eq!(hook.current_tag().0, 0, "fixed models always tag epoch 0");
        let run = hook.take_run();
        assert_eq!(run, vec![StateKey::solo(p(0, 1))]);
        // take_run resets current state to UNKNOWN.
        assert_eq!(hook.current_tag().1, UNKNOWN);
    }

    #[test]
    fn guided_commit_windows_aborts_like_recorder() {
        let model = two_state_model();
        let hook = GuidedHook::new(model, GuidanceConfig::default());
        hook.on_abort(p(0, 2), AbortCause::Validation);
        hook.on_abort(p(0, 1), AbortCause::Validation);
        hook.on_commit(p(0, 0));
        let run = hook.take_run();
        assert_eq!(run, vec![StateKey::new(vec![p(0, 1), p(0, 2)], p(0, 0))]);
    }

    #[test]
    fn guided_commits_feed_attached_drift_tracker() {
        let model = two_state_model();
        let drift = Arc::new(DriftTracker::new(&model));
        let hook = GuidedHook::with_observability(
            model,
            GuidanceConfig::default(),
            None,
            Some(drift.clone()),
        );
        // First commit transitions from UNKNOWN; the next two walk the
        // modeled A→B edge and then B's terminal (no outbound) state.
        hook.on_commit(p(0, 0)); // UNKNOWN -> A
        hook.on_commit(p(0, 1)); // A -> B (modeled edge)
        hook.on_commit(p(9, 9)); // B -> UNKNOWN (unmodeled state)
        let d = hook.drift_report().expect("tracker attached");
        assert_eq!(d.from_unknown, 1);
        assert_eq!(d.on_edge, 1);
        assert_eq!(d.to_unknown, 1);
        assert_eq!(d.transitions_total(), 3);
        assert!(hook.drift_tracker().is_some());
        // Without a tracker there is nothing to report.
        let plain = GuidedHook::new(two_state_model(), GuidanceConfig::default());
        assert!(plain.drift_report().is_none());
    }

    #[test]
    fn noop_hook_is_inert() {
        let hook = NoopHook;
        hook.gate(p(0, 0));
        hook.on_abort(p(0, 0), AbortCause::Explicit);
        hook.on_commit(p(0, 0));
    }

    // ---- adaptive mode -------------------------------------------------

    /// Manual-control adaptive config: no guardian thread, tiny window.
    fn manual_adapt(window: usize) -> AdaptConfig {
        AdaptConfig {
            window,
            min_window: 1,
            background: false,
            ..AdaptConfig::default()
        }
    }

    #[test]
    fn adaptive_hook_gates_like_fixed_until_swap() {
        let hook = GuidedHook::adaptive(
            two_state_model(),
            GuidanceConfig::with_tfactor(1.0),
            manual_adapt(16),
            None,
        );
        hook.on_commit(p(0, 0)); // current = A (epoch 0)
        assert_eq!(hook.current_tag().0, 0);
        hook.gate(p(0, 1)); // allowed under the seed model
        assert_eq!(hook.stats().passed, 1);
        let mgr = hook.manager().expect("adaptive hook has a manager");
        assert_eq!(mgr.swaps(), 0);
        assert_eq!(mgr.epoch_id(), 0);
    }

    #[test]
    fn sliding_window_is_bounded_and_cleared_by_take_run() {
        let hook = GuidedHook::adaptive(
            two_state_model(),
            GuidanceConfig::default(),
            manual_adapt(4),
            None,
        );
        for t in 0..10u16 {
            hook.on_commit(p(t, 0));
        }
        let w = hook.window_snapshot();
        assert_eq!(w.len(), 4, "window keeps only the most recent cap states");
        assert_eq!(w[0], StateKey::solo(p(6, 0)));
        assert_eq!(w[3], StateKey::solo(p(9, 0)));
        let run = hook.take_run();
        assert_eq!(run.len(), 10, "recorded Tseq is not windowed");
        assert!(hook.window_snapshot().is_empty(), "take_run clears the window");
    }

    #[test]
    fn fixed_hook_has_no_window() {
        let hook = GuidedHook::new(two_state_model(), GuidanceConfig::default());
        hook.on_commit(p(0, 0));
        assert!(hook.window_snapshot().is_empty());
        assert!(hook.manager().is_none());
    }

    #[test]
    fn forced_regeneration_swaps_epoch_and_retags_current() {
        let hook = GuidedHook::adaptive(
            two_state_model(),
            GuidanceConfig::with_tfactor(1.0),
            manual_adapt(64),
            None,
        );
        // Feed a window dominated by a different pattern than the seed
        // model: thread 7 commits everything.
        for t in 0..32u16 {
            hook.on_commit(p(t % 4, 7));
        }
        let mgr = hook.manager().unwrap();
        let new_epoch = mgr
            .regenerate_from(&hook, DriftVerdict::Stale)
            .expect("window is thick enough");
        assert_eq!(new_epoch, 1);
        assert_eq!(mgr.swaps(), 1);
        assert_eq!(mgr.epoch_id(), 1);
        // The current word still carries the epoch-0 tag, so the next
        // gate (now judging with the epoch-1 model) fails open...
        assert_eq!(hook.current_tag().0, 0);
        hook.gate(p(9, 9));
        assert_eq!(hook.stats().passed, 1, "cross-epoch state degrades to unknown");
        // ...and the next commit re-anchors the state under epoch 1.
        hook.on_commit(p(0, 7));
        assert_eq!(hook.current_tag().0, 1);
        // The regenerated model reflects the window: it contains the
        // states the window recorded.
        assert!(hook.model().num_states() >= 1);
    }

    #[test]
    fn maybe_regenerate_fires_only_on_drift() {
        // Drift ladder with a low evidence bar so a handful of off-model
        // commits reach Stale.
        let drift_cfg = crate::drift::DriftConfig {
            min_transitions: 8,
            ..crate::drift::DriftConfig::default()
        };
        let adapt = AdaptConfig {
            window: 64,
            min_window: 4,
            background: false,
            drift: drift_cfg,
            ..AdaptConfig::default()
        };
        let hook = GuidedHook::adaptive(
            two_state_model(),
            GuidanceConfig::with_tfactor(1.0),
            adapt,
            None,
        );
        let mgr = hook.manager().unwrap().clone();
        // Fresh hook, no transitions: verdict Insufficient, no swap.
        assert_eq!(mgr.maybe_regenerate(&hook), None);
        // Commit a pattern the seed model has never seen: every
        // transition is off-model/unknown, which drives the ladder to
        // Stale once min_transitions is met.
        for t in 0..24u16 {
            hook.on_commit(p(t % 3, 9));
        }
        assert!(mgr.drift_report().verdict >= DriftVerdict::Drifting);
        let swapped = mgr.maybe_regenerate(&hook);
        assert_eq!(swapped, Some(1), "stale verdict triggers regeneration");
        // The new epoch starts with a fresh tracker: immediately after
        // the swap there is no evidence against the new model.
        assert_eq!(mgr.drift_report().verdict, DriftVerdict::Insufficient);
    }

    #[test]
    fn thin_window_skips_regeneration() {
        let adapt = AdaptConfig {
            window: 64,
            min_window: 16,
            background: false,
            ..AdaptConfig::default()
        };
        let hook =
            GuidedHook::adaptive(two_state_model(), GuidanceConfig::default(), adapt, None);
        hook.on_commit(p(0, 0)); // window holds 1 < 16 states
        let mgr = hook.manager().unwrap();
        assert_eq!(mgr.regenerate_from(&hook, DriftVerdict::Stale), None);
        assert_eq!(mgr.swaps(), 0);
        assert_eq!(mgr.skipped_thin_window(), 1);
    }

    #[test]
    fn background_guardian_swaps_on_live_drift() {
        // End-to-end: guardian thread polls, sees a stale verdict, and
        // swaps without any manual call.
        let drift_cfg = crate::drift::DriftConfig {
            min_transitions: 8,
            ..crate::drift::DriftConfig::default()
        };
        let adapt = AdaptConfig {
            window: 64,
            min_window: 4,
            background: true,
            poll: std::time::Duration::from_millis(1),
            drift: drift_cfg,
        };
        let hook = GuidedHook::adaptive(
            two_state_model(),
            GuidanceConfig::with_tfactor(1.0),
            adapt,
            None,
        );
        let mgr = hook.manager().unwrap().clone();
        for round in 0..500 {
            for t in 0..8u16 {
                hook.on_commit(p(t % 3, 9)); // consistently off-model
            }
            if mgr.swaps() > 0 {
                break;
            }
            assert!(round < 499, "guardian never swapped: {:?}", mgr.drift_report());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(mgr.swaps() >= 1);
        mgr.stop();
    }
}
