//! Model analysis — deciding whether a trained model can reduce variance.
//!
//! Section IV of the paper: guidance works by shrinking each state's
//! reachable destination set `S` to a constant high-probability subset
//! `S'`. If `|S'| ≈ |S|` everywhere (the transition distribution is close
//! to uniform), there is no bias to exploit and the gate is pure overhead —
//! the situation the paper observes for *ssca2*. The **guidance metric** is
//!
//! ```text
//! metric% = 100 · Σ_s |S'(s)| / Σ_s |S(s)|
//! ```
//!
//! Lower is better; at or above ~50% the model is rejected.

use crate::config::GuidanceConfig;
use crate::tsa::GuidedModel;

/// Whether the analyzer deems a model usable for guided execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelVerdict {
    /// The model is biased enough to guide execution.
    Fit,
    /// Transition distributions are too uniform (metric above the reject
    /// threshold): guidance would only add overhead.
    TooUniform,
    /// The automaton has too few states to express meaningful bias.
    TooFewStates,
}

/// The analyzer's findings for one trained model.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzerReport {
    /// `100 · Σ|S'| / Σ|S|` over all states with outbound transitions.
    pub guidance_metric_pct: f64,
    /// Number of states in the automaton.
    pub num_states: usize,
    /// Number of edges in the automaton.
    pub num_edges: usize,
    /// Sum of unguided destination-set sizes, `Σ|S|`.
    pub total_destinations: u64,
    /// Sum of thresholded destination-set sizes, `Σ|S'|`.
    pub kept_destinations: u64,
    /// The verdict under the thresholds in [`GuidanceConfig`].
    pub verdict: ModelVerdict,
}

impl AnalyzerReport {
    /// Convenience: is the model usable?
    pub fn is_fit(&self) -> bool {
        self.verdict == ModelVerdict::Fit
    }
}

/// Analyze a model with the default thresholds.
pub fn analyze(model: &GuidedModel) -> AnalyzerReport {
    analyze_with(model, &GuidanceConfig::default())
}

/// Analyze a model: compute the guidance metric and issue a verdict.
pub fn analyze_with(model: &GuidedModel, config: &GuidanceConfig) -> AnalyzerReport {
    let mut total = 0u64;
    let mut kept = 0u64;
    for id in model.tsa().state_ids() {
        let (all, k) = model.dest_counts(id);
        total += all as u64;
        kept += k as u64;
    }
    let metric = if total == 0 {
        100.0
    } else {
        100.0 * kept as f64 / total as f64
    };
    let verdict = if model.num_states() < config.min_states {
        ModelVerdict::TooFewStates
    } else if metric >= config.metric_reject_pct {
        ModelVerdict::TooUniform
    } else {
        ModelVerdict::Fit
    };
    AnalyzerReport {
        guidance_metric_pct: metric,
        num_states: model.num_states(),
        num_edges: model.tsa().num_edges(),
        total_destinations: total,
        kept_destinations: kept,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Pair, ThreadId, TxnId};
    use crate::tsa::Tsa;
    use crate::tss::StateKey;

    fn p(t: u16, th: u16) -> Pair {
        Pair::new(TxnId(t), ThreadId(th))
    }

    /// A strongly biased model: ten states, each usually stepping to the
    /// next in a cycle but occasionally jumping elsewhere, so every state
    /// has several destinations with one dominating — the structure the
    /// guidance metric rewards.
    fn biased_runs() -> Vec<Vec<StateKey>> {
        let state = |i: u16| StateKey::solo(p(0, i));
        let mut run = Vec::new();
        let mut cur: u16 = 0;
        for step in 0..2000u16 {
            run.push(state(cur));
            cur = if step % 13 == 5 {
                (cur + 2 + step % 7) % 10
            } else {
                (cur + 1) % 10
            };
        }
        vec![run]
    }

    /// A uniform model: every destination equally likely (ssca2-like).
    fn uniform_runs(width: u16) -> Vec<Vec<StateKey>> {
        let hub = StateKey::solo(p(0, 0));
        let mut run = Vec::new();
        for rep in 0..4 {
            let _ = rep;
            for i in 0..width {
                run.push(hub.clone());
                run.push(StateKey::solo(p(1, i)));
            }
        }
        vec![run]
    }

    #[test]
    fn biased_model_scores_low_and_fits() {
        let runs = biased_runs();
        let tsa = Tsa::from_runs(&runs);
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        let report = analyze(&model);
        assert!(
            report.guidance_metric_pct < 50.0,
            "metric was {}",
            report.guidance_metric_pct
        );
        assert_eq!(report.verdict, ModelVerdict::Fit);
    }

    #[test]
    fn uniform_model_is_rejected() {
        let runs = uniform_runs(12);
        let tsa = Tsa::from_runs(&runs);
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        let report = analyze(&model);
        // Every edge has equal probability, so every edge clears P_h/4 and
        // |S'| == |S| from the hub; metric ≈ 100.
        assert!(
            report.guidance_metric_pct > 50.0,
            "metric was {}",
            report.guidance_metric_pct
        );
        assert_eq!(report.verdict, ModelVerdict::TooUniform);
    }

    #[test]
    fn tiny_model_is_rejected() {
        let a = StateKey::solo(p(0, 0));
        let b = StateKey::solo(p(0, 1));
        let tsa = Tsa::from_runs(&[vec![a, b]]);
        let model = GuidedModel::build(tsa, &GuidanceConfig::default());
        let report = analyze(&model);
        assert_eq!(report.verdict, ModelVerdict::TooFewStates);
    }

    #[test]
    fn kept_never_exceeds_total() {
        for runs in [biased_runs(), uniform_runs(5)] {
            let tsa = Tsa::from_runs(&runs);
            let model = GuidedModel::build(tsa, &GuidanceConfig::default());
            let report = analyze(&model);
            assert!(report.kept_destinations <= report.total_destinations);
            assert!(report.guidance_metric_pct <= 100.0 + 1e-9);
            // Every state with at least one outbound edge keeps at least
            // its highest-probability edge, so kept >= states-with-edges.
            assert!(report.kept_destinations >= 1);
        }
    }

    #[test]
    fn lower_tfactor_lowers_metric() {
        let runs = biased_runs();
        let tsa = Tsa::from_runs(&runs);
        let tight = analyze_with(
            &GuidedModel::build(tsa.clone(), &GuidanceConfig::with_tfactor(1.0)),
            &GuidanceConfig::default(),
        );
        let loose = analyze_with(
            &GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(10.0)),
            &GuidanceConfig::default(),
        );
        assert!(tight.guidance_metric_pct <= loose.guidance_metric_pct);
    }
}
