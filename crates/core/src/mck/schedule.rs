//! Replayable counterexample schedules.
//!
//! When exploration finds a violation the witness is a **schedule** — the
//! sequence of agent ids dispatched from the initial state. Because the
//! machine is a pure function of `(config, schedule)`, a schedule file is
//! a complete, self-contained reproduction: parse it, replay it, and you
//! land on the same violation with the same trace fingerprint, on any
//! platform, forever. "Bit-identical" is checked literally — the replay
//! folds every post-step state fingerprint into a chain hash, and two
//! replays of the same file must produce the same chain.
//!
//! ## File format (`gstm-mck-counterexample v1`)
//!
//! A line-oriented text format, one `key value` pair per header line:
//!
//! ```text
//! gstm-mck-counterexample v1
//! config threads=3 windows=2 txns=1 k=1 abort-mask=0x1 swaps=1 tfactor=4 mutation=no-release
//! breaker window=4 released=50 abort=75 starve=2 streak=3 cooldown=1 probe=1
//! violation kind=gate-unbounded agent=0 step=9
//! fingerprint 0xdeadbeefdeadbeef
//! detail thread 0 re-examined the gate 3 times with k=1
//! schedule 0 0 0 1 2
//! ```
//!
//! The `breaker` line is omitted when the breaker is off; floats use
//! Rust's shortest round-trip `Display`, so parsing is exact.

use std::fmt::Write as _;

use super::machine::{MachineState, MckBreakerConfig, MckConfig, Violation, ViolationKind};
use super::Mutation;

/// Magic first line of a schedule file.
pub const MAGIC: &str = "gstm-mck-counterexample v1";

/// Everything a violation reproduction needs, serializable to text.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The configuration the machine was built with (mutation included).
    pub config: MckConfig,
    /// Agent ids dispatched in order from the initial state.
    pub schedule: Vec<u16>,
    /// The violation the schedule ends in.
    pub violation: Violation,
    /// Chain hash over every post-step state fingerprint.
    pub fingerprint: u64,
}

/// What replaying a schedule produced.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Violation hit while replaying (the schedule's final step, if any).
    pub violation: Option<Violation>,
    /// Chain hash over every post-step state fingerprint. For a schedule
    /// ending in a violation the chain covers the steps *before* it (the
    /// violating step has no post-state — the machine stops there).
    pub fingerprint: u64,
    /// Steps actually dispatched (may be short of the schedule if an
    /// agent was disabled — that is an `Err` from [`replay_schedule`]).
    pub steps: u32,
}

/// Replay `schedule` against a fresh machine for `cfg`. Pure function:
/// same inputs, same outcome, bit for bit. Errors when the schedule
/// dispatches an agent that is not enabled (a corrupt or mismatched
/// file), naming the offending index.
pub fn replay_schedule(cfg: &MckConfig, schedule: &[u16]) -> Result<ReplayOutcome, String> {
    let mut state = MachineState::initial(cfg);
    let mut chain: u64 = 0xcbf2_9ce4_8422_2325;
    let mut steps = 0u32;
    for (i, &a) in schedule.iter().enumerate() {
        if !state.enabled(a) {
            return Err(format!(
                "schedule step {i} dispatches agent {a}, which is not enabled \
                 (wrong config, or file corrupted)"
            ));
        }
        let eff = state.step(a);
        steps += 1;
        if let Some(v) = eff.violation {
            if i + 1 != schedule.len() {
                return Err(format!(
                    "schedule hit {} at step {i} but has {} more steps",
                    v.kind.name(),
                    schedule.len() - i - 1
                ));
            }
            return Ok(ReplayOutcome { violation: Some(v), fingerprint: chain, steps });
        }
        state = eff.state;
        chain = chain
            .rotate_left(7)
            .wrapping_mul(0x100_0000_01b3)
            ^ state.fingerprint();
    }
    Ok(ReplayOutcome { violation: None, fingerprint: chain, steps })
}

impl Counterexample {
    /// Build a counterexample from an explorer witness, computing the
    /// reference fingerprint by replaying it once. Errors if the schedule
    /// does not actually reproduce the violation (an explorer bug).
    pub fn capture(
        cfg: &MckConfig,
        schedule: Vec<u16>,
        violation: Violation,
    ) -> Result<Counterexample, String> {
        let outcome = replay_schedule(cfg, &schedule)?;
        match &outcome.violation {
            Some(v) if *v == violation => Ok(Counterexample {
                config: cfg.clone(),
                schedule,
                violation,
                fingerprint: outcome.fingerprint,
            }),
            Some(v) => Err(format!(
                "witness replayed to {} but the explorer reported {}",
                v.kind.name(),
                violation.kind.name()
            )),
            None => Err("witness schedule replays clean — explorer bug".into()),
        }
    }

    /// Serialize to the v1 text format.
    pub fn to_text(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = write!(
            out,
            "config threads={} windows={} txns={} k={} abort-mask={:#x} swaps={} tfactor={}",
            c.threads, c.windows, c.txns, c.k_retries, c.abort_mask, c.swaps, c.tfactor
        );
        if let Some(m) = c.mutation {
            let _ = write!(out, " mutation={}", m.name());
        }
        out.push('\n');
        if let Some(b) = &c.breaker {
            let _ = writeln!(
                out,
                "breaker window={} released={} abort={} starve={} streak={} cooldown={} probe={}",
                b.window,
                b.max_released_pct,
                b.max_abort_pct,
                b.starvation_releases,
                b.abort_streak,
                b.cooldown,
                b.probe_window
            );
        }
        let v = &self.violation;
        let _ = writeln!(
            out,
            "violation kind={} agent={} step={}",
            v.kind.name(),
            v.agent,
            v.step
        );
        let _ = writeln!(out, "fingerprint {:#018x}", self.fingerprint);
        let _ = writeln!(out, "detail {}", v.detail);
        let _ = write!(out, "schedule");
        for a in &self.schedule {
            let _ = write!(out, " {a}");
        }
        out.push('\n');
        out
    }

    /// Parse the v1 text format. Strict: unknown lines, missing fields,
    /// and malformed numbers are errors, because a counterexample that
    /// half-parses would "replay" something other than what was found.
    pub fn parse(text: &str) -> Result<Counterexample, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == MAGIC => {}
            other => return Err(format!("bad magic line: {other:?}")),
        }
        let mut config: Option<MckConfig> = None;
        let mut breaker: Option<MckBreakerConfig> = None;
        let mut violation: Option<(ViolationKind, u16, u32)> = None;
        let mut fingerprint: Option<u64> = None;
        let mut detail: Option<String> = None;
        let mut schedule: Option<Vec<u16>> = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
            match tag {
                "config" => {
                    let mut c = MckConfig {
                        breaker: None,
                        mutation: None,
                        ..MckConfig::default()
                    };
                    for field in rest.split_whitespace() {
                        let (k, v) = field
                            .split_once('=')
                            .ok_or_else(|| format!("bad config field {field:?}"))?;
                        match k {
                            "threads" => c.threads = num(v)? as u16,
                            "windows" => c.windows = num(v)? as u16,
                            "txns" => c.txns = num(v)? as u16,
                            "k" => c.k_retries = num(v)? as u32,
                            "abort-mask" => c.abort_mask = num(v)?,
                            "swaps" => c.swaps = num(v)? as u32,
                            "tfactor" => {
                                c.tfactor = v
                                    .parse()
                                    .map_err(|_| format!("bad tfactor {v:?}"))?
                            }
                            "mutation" => {
                                c.mutation = Some(
                                    Mutation::parse(v)
                                        .ok_or_else(|| format!("unknown mutation {v:?}"))?,
                                )
                            }
                            _ => return Err(format!("unknown config key {k:?}")),
                        }
                    }
                    config = Some(c);
                }
                "breaker" => {
                    let mut b = MckBreakerConfig::default();
                    for field in rest.split_whitespace() {
                        let (k, v) = field
                            .split_once('=')
                            .ok_or_else(|| format!("bad breaker field {field:?}"))?;
                        match k {
                            "window" => b.window = num(v)?,
                            "released" => {
                                b.max_released_pct =
                                    v.parse().map_err(|_| format!("bad pct {v:?}"))?
                            }
                            "abort" => {
                                b.max_abort_pct =
                                    v.parse().map_err(|_| format!("bad pct {v:?}"))?
                            }
                            "starve" => b.starvation_releases = num(v)? as u32,
                            "streak" => b.abort_streak = num(v)? as u32,
                            "cooldown" => b.cooldown = num(v)?,
                            "probe" => b.probe_window = num(v)?,
                            _ => return Err(format!("unknown breaker key {k:?}")),
                        }
                    }
                    breaker = Some(b);
                }
                "violation" => {
                    let mut kind = None;
                    let mut agent = 0u16;
                    let mut step = 0u32;
                    for field in rest.split_whitespace() {
                        let (k, v) = field
                            .split_once('=')
                            .ok_or_else(|| format!("bad violation field {field:?}"))?;
                        match k {
                            "kind" => {
                                kind = Some(
                                    ViolationKind::parse(v)
                                        .ok_or_else(|| format!("unknown kind {v:?}"))?,
                                )
                            }
                            "agent" => agent = num(v)? as u16,
                            "step" => step = num(v)? as u32,
                            _ => return Err(format!("unknown violation key {k:?}")),
                        }
                    }
                    let kind = kind.ok_or("violation line missing kind")?;
                    violation = Some((kind, agent, step));
                }
                "fingerprint" => fingerprint = Some(num(rest.trim())?),
                "detail" => detail = Some(rest.to_string()),
                "schedule" => {
                    let mut s = Vec::new();
                    for tok in rest.split_whitespace() {
                        s.push(num(tok)? as u16);
                    }
                    schedule = Some(s);
                }
                _ => return Err(format!("unknown line tag {tag:?}")),
            }
        }
        let mut config = config.ok_or("missing config line")?;
        config.breaker = breaker;
        config.validate()?;
        let (kind, agent, step) = violation.ok_or("missing violation line")?;
        Ok(Counterexample {
            config,
            schedule: schedule.ok_or("missing schedule line")?,
            violation: Violation {
                kind,
                agent,
                step,
                detail: detail.ok_or("missing detail line")?,
            },
            fingerprint: fingerprint.ok_or("missing fingerprint line")?,
        })
    }

    /// Replay this counterexample and check it is bit-identical: same
    /// violation kind/agent/step and the same trace fingerprint as when
    /// it was captured. Returns the outcome for reporting.
    pub fn verify(&self) -> Result<ReplayOutcome, String> {
        let outcome = replay_schedule(&self.config, &self.schedule)?;
        let v = outcome
            .violation
            .as_ref()
            .ok_or("replay completed without a violation")?;
        if v.kind != self.violation.kind
            || v.agent != self.violation.agent
            || v.step != self.violation.step
        {
            return Err(format!(
                "replay diverged: file says {} agent={} step={}, replay hit {} agent={} step={}",
                self.violation.kind.name(),
                self.violation.agent,
                self.violation.step,
                v.kind.name(),
                v.agent,
                v.step
            ));
        }
        if outcome.fingerprint != self.fingerprint {
            return Err(format!(
                "trace fingerprint mismatch: file {:#018x}, replay {:#018x}",
                self.fingerprint, outcome.fingerprint
            ));
        }
        Ok(outcome)
    }
}

fn num(s: &str) -> Result<u64, String> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("bad number {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::super::explore::{explore, ExploreOptions};
    use super::*;

    fn witness(mutation: Mutation) -> Counterexample {
        let cfg = MckConfig {
            threads: 2,
            windows: 2,
            abort_mask: 0,
            mutation: Some(mutation),
            ..MckConfig::ci()
        };
        let r = explore(
            &cfg,
            ExploreOptions { count_naive: false, ..ExploreOptions::default() },
        );
        let (schedule, v) = r.violation.expect("mutation produces a violation");
        Counterexample::capture(&cfg, schedule, v).expect("witness captures")
    }

    #[test]
    fn capture_serialize_parse_verify_round_trips() {
        let ce = witness(Mutation::NoRelease);
        let text = ce.to_text();
        let parsed = Counterexample::parse(&text).expect("parses");
        assert_eq!(parsed.schedule, ce.schedule);
        assert_eq!(parsed.violation, ce.violation);
        assert_eq!(parsed.fingerprint, ce.fingerprint);
        // Bit-identical replay, twice, from the parsed copy.
        let a = parsed.verify().expect("first replay");
        let b = parsed.verify().expect("second replay");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.fingerprint, ce.fingerprint);
    }

    #[test]
    fn tampered_files_are_rejected() {
        let ce = witness(Mutation::SkipReleaseRecheck);
        let text = ce.to_text();
        // Flip a fingerprint bit: replay must refuse.
        let mut parsed = Counterexample::parse(&text).unwrap();
        parsed.fingerprint ^= 1;
        assert!(parsed.verify().is_err(), "tampered fingerprint accepted");
        // Truncate the schedule: the violation is never reached.
        let mut parsed = Counterexample::parse(&text).unwrap();
        parsed.schedule.pop();
        assert!(parsed.verify().is_err(), "truncated schedule accepted");
    }

    #[test]
    fn trailing_steps_after_the_violation_are_an_error() {
        let mut ce = witness(Mutation::NoRelease);
        ce.schedule.push(0);
        assert!(replay_schedule(&ce.config, &ce.schedule).is_err());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Counterexample::parse("not a counterexample").is_err());
        let ce = witness(Mutation::NoRelease);
        let text = ce.to_text();
        assert!(Counterexample::parse(&text.replace("schedule", "sched")).is_err());
        assert!(Counterexample::parse(&text.replace("kind=", "kind=bogus-")).is_err());
    }
}
