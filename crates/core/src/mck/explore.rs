//! Exhaustive exploration with dynamic partial-order reduction.
//!
//! The explorer is a stateful DFS over the machine's (acyclic) state
//! graph with two reductions layered on top:
//!
//! * **Sleep sets** (Godefroid): after exploring sibling `t`, agents
//!   whose next step is independent of `t`'s are put to sleep in `t`'s
//!   subtree — the interleaving that runs them first was already covered
//!   by the earlier sibling. With state matching, a revisited state
//!   re-explores only the transitions a previous visit slept through
//!   (the stored explored-mask), which keeps the combination sound.
//! * **Persistent singletons** (stubborn-set rule): when an enabled
//!   agent's next step has a footprint disjoint from the *future*
//!   footprint of every other live agent, that step commutes with
//!   everything the rest of the system can ever do, so exploring it alone
//!   covers every trace from this state. This fires constantly near the
//!   end of threads' programs and turns long deterministic tails into
//!   straight lines.
//!
//! **Soundness** (details in DESIGN.md §15): the machine's state graph is
//! finite and acyclic (every step strictly consumes budgeted work), all
//! checked properties are violations attached to a single transition
//! (bounded liveness is encoded as a ceiling-exceeded safety check), and
//! dependency is keyed on exact per-step footprints logged by the machine
//! itself — two steps with disjoint footprints commute and leave each
//! other's footprint unchanged. Every Mazurkiewicz trace therefore keeps
//! at least one explored representative, the violating transition occurs
//! in that representative with the same reads (hence the same verdict),
//! and a violation reported on trunk or missed under mutation is
//! machine-reality, not search noise.
//!
//! The **naive interleaving count** is computed exactly (no enumeration)
//! by a memoized path-count over the full graph: `paths(s) = Σ_enabled
//! paths(step(s, a))`, with violations and complete states counting one
//! path each. The POR reduction factor is that count divided by the
//! number of transitions the reduced search executed — a measured claim.

use std::collections::{HashMap, VecDeque};

use super::machine::{MachineState, MckConfig, StepEffect, Violation};

/// Exploration knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Apply the reductions (sleep sets + persistent singletons). Off =
    /// full stateful search (still state-merging, never path-enumerating).
    pub por: bool,
    /// Also run the exact naive path-count pass.
    pub count_naive: bool,
    /// Safety valve: abort exploration after this many distinct states.
    pub max_states: u64,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions { por: true, count_naive: true, max_states: 50_000_000 }
    }
}

/// What an exploration measured and found.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct states visited by the (reduced) search.
    pub states: u64,
    /// Transitions executed by the (reduced) search.
    pub transitions: u64,
    /// Complete (maximal) executions the search ran to the end.
    pub complete_paths: u64,
    /// Transitions skipped because the agent was asleep.
    pub sleep_skips: u64,
    /// States expanded through a persistent singleton.
    pub persistent_hits: u64,
    /// Exact number of interleavings a naive enumeration would walk
    /// (`None` when the pass is disabled).
    pub naive_interleavings: Option<u128>,
    /// Distinct states in the *full* graph (from the naive pass).
    pub naive_states: Option<u64>,
    /// `naive_interleavings / transitions` (None without the naive pass).
    pub reduction_factor: Option<f64>,
    /// First violation found, with the schedule that reaches it.
    pub violation: Option<(Vec<u16>, Violation)>,
    /// True if `max_states` stopped the search early.
    pub truncated: bool,
}

struct Explorer {
    opts: ExploreOptions,
    /// State → mask of agents already explored from it.
    visited: HashMap<Vec<u64>, u32>,
    states: u64,
    transitions: u64,
    complete_paths: u64,
    sleep_skips: u64,
    persistent_hits: u64,
    violation: Option<(Vec<u16>, Violation)>,
    truncated: bool,
}

fn bit(a: u16) -> u32 {
    1 << a
}

impl Explorer {
    fn dfs(&mut self, state: &MachineState, sleep: u32, path: &mut Vec<u16>) {
        if self.violation.is_some() || self.truncated {
            return;
        }
        let enabled = state.enabled_agents();
        if enabled.is_empty() {
            // Terminal states are states too (the naive DP memoizes them,
            // so the full stateful search must count them to match).
            let key = state.encode();
            if !self.visited.contains_key(&key) {
                if self.states >= self.opts.max_states {
                    self.truncated = true;
                    return;
                }
                self.states += 1;
                self.visited.insert(key, u32::MAX);
            }
            self.complete_paths += 1;
            if let Some(v) = state.check_complete() {
                self.violation = Some((path.clone(), v));
            }
            return;
        }
        let key = state.encode();
        let explored_mask = match self.visited.get(&key) {
            Some(&m) => m,
            None => {
                if self.states >= self.opts.max_states {
                    self.truncated = true;
                    return;
                }
                self.states += 1;
                self.visited.insert(key.clone(), 0);
                0
            }
        };
        // Compute every enabled effect once: the successors drive the
        // recursion and the footprints drive both reductions.
        let effects: Vec<(u16, StepEffect)> =
            enabled.iter().map(|&a| (a, state.step(a))).collect();
        let enabled_mask =
            enabled.iter().fold(0u32, |m, &a| m | bit(a));
        let mut need = enabled_mask & !sleep;
        self.sleep_skips += (enabled_mask & sleep).count_ones() as u64;
        let mut persistent = false;
        if self.opts.por && self.violation.is_none() {
            // Persistent singleton: a step whose footprint cannot ever be
            // interfered with covers all traces on its own.
            if let Some(&(a, ref eff)) = effects.iter().find(|&&(a, ref eff)| {
                state.live_agents().iter().all(|&u| {
                    u == a || !eff.footprint.conflicts(&state.future_footprint(u))
                })
            }) {
                let _ = eff;
                need = bit(a);
                persistent = true;
                self.persistent_hits += 1;
            }
        }
        let todo = need & !explored_mask;
        if todo == 0 {
            return;
        }
        let mut done_here = 0u32;
        for &(a, ref eff) in &effects {
            if todo & bit(a) == 0 {
                continue;
            }
            self.transitions += 1;
            path.push(a);
            if let Some(v) = &eff.violation {
                if self.violation.is_none() {
                    self.violation = Some((path.clone(), v.clone()));
                }
                path.pop();
                break;
            }
            // Sleep for the child: agents slept here (or already explored
            // as earlier siblings) stay asleep iff independent of `a`.
            let mut child_sleep = 0u32;
            for &(u, ref ueff) in &effects {
                if (sleep | done_here) & bit(u) != 0
                    && self.opts.por
                    && !ueff.footprint.conflicts(&eff.footprint)
                {
                    child_sleep |= bit(u);
                }
            }
            self.dfs(&eff.state, child_sleep, path);
            path.pop();
            done_here |= bit(a);
            if self.violation.is_some() || self.truncated {
                break;
            }
        }
        let mark = if persistent && self.violation.is_none() && !self.truncated {
            // The singleton covered every trace from here: no future
            // visit needs to expand the siblings.
            enabled_mask
        } else {
            done_here
        };
        *self.visited.get_mut(&key).unwrap() |= mark;
    }
}

/// Exact interleaving count of the full graph by memoized DP (no path is
/// ever enumerated, so astronomically large counts are fine). Returns
/// `(paths, distinct_states)`; counts saturate at `u128::MAX`.
pub fn naive_interleavings(cfg: &MckConfig) -> (u128, u64) {
    fn count(
        state: &MachineState,
        memo: &mut HashMap<Vec<u64>, u128>,
    ) -> u128 {
        let key = state.encode();
        if let Some(&c) = memo.get(&key) {
            return c;
        }
        let enabled = state.enabled_agents();
        let total = if enabled.is_empty() {
            1
        } else {
            let mut sum = 0u128;
            for a in enabled {
                let eff = state.step(a);
                let c = if eff.violation.is_some() {
                    1
                } else {
                    count(&eff.state, memo)
                };
                sum = sum.saturating_add(c);
            }
            sum
        };
        memo.insert(key, total);
        total
    }
    let mut memo = HashMap::new();
    let paths = count(&MachineState::initial(cfg), &mut memo);
    (paths, memo.len() as u64)
}

/// Explore `cfg` exhaustively and report. Stops at the first violation
/// (the schedule prefix reaching it is in the report); when a violation
/// is found it is minimized — shortest length by BFS over the full
/// graph, then greedy context-switch reduction — before being returned.
pub fn explore(cfg: &MckConfig, opts: ExploreOptions) -> ExploreReport {
    let initial = MachineState::initial(cfg);
    let mut ex = Explorer {
        opts,
        visited: HashMap::new(),
        states: 0,
        transitions: 0,
        complete_paths: 0,
        sleep_skips: 0,
        persistent_hits: 0,
        violation: None,
        truncated: false,
    };
    ex.dfs(&initial, 0, &mut Vec::new());
    let violation = ex.violation.take().map(|(schedule, v)| {
        let short = shortest_violation(cfg, v.kind, schedule.len())
            .unwrap_or((schedule, v));
        minimize_switches(cfg, short)
    });
    let (naive, naive_states) = if opts.count_naive && !ex.truncated {
        let (p, s) = naive_interleavings(cfg);
        (Some(p), Some(s))
    } else {
        (None, None)
    };
    let reduction = naive.map(|n| {
        let t = ex.transitions.max(1) as f64;
        n as f64 / t
    });
    ExploreReport {
        states: ex.states,
        transitions: ex.transitions,
        complete_paths: ex.complete_paths,
        sleep_skips: ex.sleep_skips,
        persistent_hits: ex.persistent_hits,
        naive_interleavings: naive,
        naive_states,
        reduction_factor: reduction,
        violation,
        truncated: ex.truncated,
    }
}

/// Shortest schedule (by BFS over the full graph) reaching any violation
/// of `kind`, bounded by the DFS witness length (so the search cannot be
/// slower than re-walking the graph to that depth).
fn shortest_violation(
    cfg: &MckConfig,
    kind: super::machine::ViolationKind,
    max_len: usize,
) -> Option<(Vec<u16>, Violation)> {
    struct Node {
        parent: usize,
        agent: u16,
        state: MachineState,
    }
    let initial = MachineState::initial(cfg);
    let mut arena = vec![Node { parent: usize::MAX, agent: u16::MAX, state: initial }];
    let mut seen: HashMap<Vec<u64>, ()> = HashMap::new();
    seen.insert(arena[0].state.encode(), ());
    let mut queue = VecDeque::from([(0usize, 0usize)]);
    while let Some((idx, depth)) = queue.pop_front() {
        if depth >= max_len {
            continue;
        }
        let agents = arena[idx].state.enabled_agents();
        for a in agents {
            let eff = arena[idx].state.step(a);
            if let Some(v) = eff.violation {
                if v.kind == kind {
                    // Rebuild the schedule from the parent chain.
                    let mut schedule = vec![a];
                    let mut at = idx;
                    while arena[at].parent != usize::MAX {
                        schedule.push(arena[at].agent);
                        at = arena[at].parent;
                    }
                    schedule.reverse();
                    return Some((schedule, v));
                }
                continue;
            }
            let key = eff.state.encode();
            if seen.contains_key(&key) {
                continue;
            }
            seen.insert(key, ());
            arena.push(Node { parent: idx, agent: a, state: eff.state });
            queue.push_back((arena.len() - 1, depth + 1));
        }
    }
    None
}

/// Greedy context-switch reduction: try to bubble steps toward their
/// same-agent neighbours; a candidate is kept when replaying it still
/// ends in the same violation kind. Purely cosmetic — the schedule stays
/// the same length — but the emitted counterexample reads as a handful of
/// thread runs instead of a shuffle.
fn minimize_switches(
    cfg: &MckConfig,
    witness: (Vec<u16>, Violation),
) -> (Vec<u16>, Violation) {
    let (mut schedule, mut violation) = witness;
    let switches = |s: &[u16]| s.windows(2).filter(|w| w[0] != w[1]).count();
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..schedule.len().saturating_sub(1) {
            if schedule[i] == schedule[i + 1] {
                continue;
            }
            let mut cand = schedule.clone();
            cand.swap(i, i + 1);
            if switches(&cand) >= switches(&schedule) {
                continue;
            }
            if let Some(v) = run_schedule(cfg, &cand) {
                if v.kind == violation.kind {
                    schedule = cand;
                    violation = v;
                    improved = true;
                }
            }
        }
    }
    (schedule, violation)
}

/// Run a schedule to its end; `None` if it completes without violation
/// or dispatches a disabled agent.
fn run_schedule(cfg: &MckConfig, schedule: &[u16]) -> Option<Violation> {
    let mut state = MachineState::initial(cfg);
    for &a in schedule {
        if !state.enabled(a) {
            return None;
        }
        let eff = state.step(a);
        if eff.violation.is_some() {
            return eff.violation;
        }
        state = eff.state;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::machine::ViolationKind;
    use super::super::Mutation;
    use super::*;

    /// A configuration small enough for the unit-test tier: 2 threads ×
    /// 2 windows, one swap, breaker on. Two windows matter: with a single
    /// window the cyclic seed model always happens to allow the only
    /// other thread, so nothing is ever gated and the gate mutations are
    /// unreachable. A second window makes a thread re-gate right after
    /// its own commit, against a state that allows only its successor.
    fn tiny() -> MckConfig {
        MckConfig { threads: 2, windows: 2, abort_mask: 0, ..MckConfig::ci() }
    }

    #[test]
    fn tiny_trunk_is_clean_and_por_agrees_with_full_search() {
        let with_por = explore(&tiny(), ExploreOptions::default());
        assert!(with_por.violation.is_none(), "{:?}", with_por.violation);
        assert!(!with_por.truncated);
        let full = explore(
            &tiny(),
            ExploreOptions { por: false, ..ExploreOptions::default() },
        );
        assert!(full.violation.is_none());
        // The reduced search must touch no more than the full one.
        assert!(with_por.transitions <= full.transitions);
        assert!(with_por.states <= full.states);
        // And the full stateful search must cover the whole graph.
        assert_eq!(Some(full.states), full.naive_states);
    }

    #[test]
    fn naive_count_dominates_reduced_transitions() {
        let r = explore(&tiny(), ExploreOptions::default());
        let naive = r.naive_interleavings.unwrap();
        assert!(naive >= r.transitions as u128);
        assert!(r.reduction_factor.unwrap() >= 1.0);
    }

    #[test]
    fn mutations_are_caught_in_the_tiny_model_where_reachable() {
        // The gate-protocol mutations need only the gate + swap machinery
        // and are reachable even at 2×1.
        for (m, kind) in [
            (Mutation::SkipReleaseRecheck, ViolationKind::ReleasedWhileAllowed),
            (Mutation::NoRelease, ViolationKind::GateUnbounded),
        ] {
            let cfg = MckConfig { mutation: Some(m), ..tiny() };
            let r = explore(&cfg, ExploreOptions { count_naive: false, ..Default::default() });
            let (schedule, v) = r.violation.unwrap_or_else(|| panic!("{m} not caught"));
            assert_eq!(v.kind, kind, "{m}");
            // The minimized witness must still replay to the violation.
            let replayed = run_schedule(&cfg, &schedule).expect("witness replays");
            assert_eq!(replayed.kind, kind, "{m}: minimized witness diverged");
        }
    }

    #[test]
    fn shortest_witness_is_no_longer_than_the_dfs_witness() {
        let cfg = MckConfig { mutation: Some(Mutation::NoRelease), ..tiny() };
        let r = explore(&cfg, ExploreOptions { count_naive: false, ..Default::default() });
        let (schedule, _) = r.violation.unwrap();
        // Re-run the raw DFS (no minimization) by checking the registered
        // schedule replays — and that BFS could not have missed a shorter
        // one at half the length (sanity bound, not an exact oracle).
        assert!(run_schedule(&cfg, &schedule).is_some());
        assert!(schedule.len() >= 3, "a violation needs at least entry+checks");
    }
}
