//! The small-step operational model of the guidance protocol.
//!
//! Each step is one atomic action on the shared words the real
//! implementation touches. The atomicity coarsening relative to the real
//! code is documented per phase below and in DESIGN.md §15; every monitor
//! (safety invariant or bounded-liveness bound) is evaluated inside the
//! step that could break it, so a violation is attached to the exact
//! `(agent, step)` that caused it and a schedule prefix reproduces it.
//!
//! The machine is a *pure function*: `step(agent)` on equal states yields
//! equal results, which is what makes counterexample schedules replayable
//! bit-identically and lets the explorer memoize on state identity.
//!
//! ## Agents and phases
//!
//! Workers `0..threads` each run `windows` transaction windows; window `w`
//! commits the pair `(w % txns, t)`. A window scripted to abort (bit
//! `t*windows+w` of `abort_mask`) aborts once, re-gates, then commits —
//! the same shape the PR 4 replay harness drives. Agent id `threads` is
//! the model manager: each of its `swaps` steps rebuilds a model from the
//! recorded Tseq and publishes a new generation (one step, faithful to the
//! real install-then-bump ordering, under which no reader can observe a
//! generation without its model).
//!
//! Per window a worker takes these steps:
//!
//! 1. **GateEntry** — the breaker bypass check plus the epoch resolution
//!    (`EpochCell::load`). Coarsened to one step: the interleavings this
//!    hides cannot affect any checked invariant (both halves are loads;
//!    the outcome partition, automaton and tag invariants are insensitive
//!    to a trip landing between them).
//! 2. **GateCheck** × (≤ `k_retries` + 1) — one load of the current word
//!    per step, mirroring `GuidedHook::gate_with`: an allowed word
//!    resolves Passed (first check) or Waited (later); the check after the
//!    retry budget is the *final re-examination* that resolves Waited or
//!    Released. The real spin/backoff loop between checks is not modeled —
//!    the scheduler choosing when the next check runs covers every
//!    possible wait duration.
//! 3. **AbortStep** (scripted) — push into the thread's abort shard and
//!    notify the breaker, then re-gate.
//! 4. **CommitEntry** — re-resolve the epoch (the commit path does its own
//!    `EpochCell::load`).
//! 5. **CommitApply** — drain all shards into a [`StateKey`], append to
//!    the recorded Tseq, classify under the pinned epoch's model, store
//!    the packed `(epoch, state)` current word, notify the breaker. This
//!    is the mutex-serialized section of the real `StateTracker::commit_with`
//!    plus the adjacent word store; a hot-swap can land between
//!    CommitEntry and CommitApply, which is exactly the race the
//!    `TornEpochTag` monitor watches.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use super::Mutation;
use crate::adapt::{pack_state, unpack_state};
use crate::config::GuidanceConfig;
use crate::ids::{Pair, ThreadId, TxnId};
use crate::tsa::{GuidedModel, StateId, Tsa};
use crate::tss::StateKey;

/// Unknown state id (mirrors `guidance::UNKNOWN`).
pub const UNKNOWN: u32 = u32::MAX;
/// Current word naming "unknown under epoch 0" (mirrors the hook's
/// fail-open store).
const UNKNOWN_WORD: u64 = UNKNOWN as u64;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Breaker thresholds for the model machine — the integer-scale mirror of
/// [`crate::breaker::BreakerConfig`] (no drift tracker is attached, so the
/// off-model checks are inert, as they are on a hook without drift).
#[derive(Clone, Copy, Debug)]
pub struct MckBreakerConfig {
    /// Gate calls per Closed evaluation window.
    pub window: u64,
    /// Trip when a window's released share (percent) reaches this.
    pub max_released_pct: f64,
    /// Trip when a window's abort share (percent) reaches this.
    pub max_abort_pct: f64,
    /// Trip on this many consecutive releases on one thread.
    pub starvation_releases: u32,
    /// Trip on this many consecutive aborts without a commit.
    pub abort_streak: u32,
    /// Gate calls spent Open before probing.
    pub cooldown: u64,
    /// Gate calls the Half-Open probe observes before judging.
    pub probe_window: u64,
}

impl Default for MckBreakerConfig {
    /// Small-model thresholds: every state of the automaton is reachable
    /// within a handful of gate calls, so a 3-thread × 2-window run
    /// exercises trips, cooldowns, probes and re-closes.
    fn default() -> Self {
        MckBreakerConfig {
            window: 4,
            max_released_pct: 50.0,
            max_abort_pct: 75.0,
            starvation_releases: 2,
            abort_streak: 3,
            cooldown: 1,
            probe_window: 1,
        }
    }
}

/// A bounded configuration of the protocol to explore exhaustively.
#[derive(Clone, Debug)]
pub struct MckConfig {
    /// Worker (logical) threads. At most 16 (footprint bitmask width).
    pub threads: u16,
    /// Committed windows per worker.
    pub windows: u16,
    /// Transaction-site alphabet size; window `w` commits `(w % txns, t)`.
    pub txns: u16,
    /// Gate retry budget (the final re-examination is one more check).
    pub k_retries: u32,
    /// Bit `t*windows + w` set ⇒ worker `t`'s window `w` aborts once
    /// before committing.
    pub abort_mask: u64,
    /// Model-manager hot-swap ops (0 = adaptive path disabled).
    pub swaps: u32,
    /// Breaker automaton (None = breaker disabled).
    pub breaker: Option<MckBreakerConfig>,
    /// Tfactor for the seed model and every rebuilt epoch.
    pub tfactor: f64,
    /// The flipped protocol decision, if any.
    pub mutation: Option<Mutation>,
}

impl Default for MckConfig {
    fn default() -> Self {
        MckConfig {
            threads: 3,
            windows: 2,
            txns: 1,
            k_retries: 1,
            abort_mask: 0b1,
            swaps: 1,
            breaker: Some(MckBreakerConfig::default()),
            tfactor: 4.0,
            mutation: None,
        }
    }
}

impl MckConfig {
    /// The CI configuration: 3 threads × 2 windows with guidance, breaker
    /// and hot-swap all enabled (the acceptance configuration).
    pub fn ci() -> Self {
        MckConfig::default()
    }

    /// Validate bounds the machine's packing relies on.
    pub fn validate(&self) -> Result<(), String> {
        let ok = self.threads >= 1
            && self.threads <= 16
            && self.windows >= 1
            && self.windows <= 8
            && self.txns >= 1
            && self.k_retries >= 1
            && self.k_retries <= 8
            && self.swaps <= 8;
        if !ok {
            return Err(format!(
                "config out of model bounds (threads 1..=16, windows 1..=8, txns >= 1, \
                 k 1..=8, swaps <= 8): {self:?}"
            ));
        }
        if let Some(b) = &self.breaker {
            if b.window == 0 || b.probe_window == 0 || b.cooldown == 0 {
                return Err("breaker windows/cooldown must be >= 1".into());
            }
            if b.starvation_releases == 0 || b.abort_streak == 0 {
                return Err("breaker streak thresholds must be >= 1".into());
            }
        }
        Ok(())
    }

    /// Total schedulable agents (workers plus the manager when swaps > 0).
    pub fn agents(&self) -> u16 {
        self.threads + (self.swaps > 0) as u16
    }

    /// The manager's agent id, when the adaptive path is enabled.
    pub fn manager_agent(&self) -> Option<u16> {
        (self.swaps > 0).then_some(self.threads)
    }

    /// The pair worker `t` commits in window `w`.
    pub fn who(&self, t: u16, w: u16) -> Pair {
        Pair::new(TxnId(w % self.txns), ThreadId(t))
    }

    fn wants_abort(&self, t: u16, w: u16) -> bool {
        let bit = t as u32 * self.windows as u32 + w as u32;
        bit < 64 && self.abort_mask >> bit & 1 != 0
    }

    fn guidance(&self) -> GuidanceConfig {
        GuidanceConfig { tfactor: self.tfactor, ..GuidanceConfig::default() }
    }

    /// The deterministic seed model: a strictly cyclic training run over
    /// the worker pair alphabet, so state "after thread t committed"
    /// allows only thread `t+1 (mod threads)` — the gate genuinely
    /// blocks, releases and waits in the explored space.
    pub fn seed_model(&self) -> Arc<GuidedModel> {
        let mut run = Vec::new();
        for round in 0..(2 * self.txns.max(1)) {
            for t in 0..self.threads {
                run.push(StateKey::solo(self.who(t, round)));
            }
        }
        Arc::new(GuidedModel::build(Tsa::from_runs(&[run]), &self.guidance()))
    }
}

// ---------------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------------

/// What broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A gate released a pair the current word actually allowed — the
    /// release was not preceded by a final re-examination.
    ReleasedWhileAllowed,
    /// A gate call examined the word more than `k_retries + 1` times —
    /// the k-retry release failed to fire.
    GateUnbounded,
    /// The breaker took an edge outside {C→O, O→H, H→C, H→O}.
    IllegalBreakerTransition,
    /// Half-Open accumulated more than `probe_window` calls without
    /// being judged.
    HalfOpenStuck,
    /// The current word is tagged with a generation that was never
    /// published.
    UnpublishedEpoch,
    /// The current word's state id is not the id the tagged epoch's model
    /// assigns to the committed key — a torn old/new model read.
    TornEpochTag,
    /// Gate outcome counters do not partition the resolved call count.
    OutcomePartition,
}

impl ViolationKind {
    /// Stable name for schedule files and reports.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::ReleasedWhileAllowed => "released-while-allowed",
            ViolationKind::GateUnbounded => "gate-unbounded",
            ViolationKind::IllegalBreakerTransition => "illegal-breaker-transition",
            ViolationKind::HalfOpenStuck => "half-open-stuck",
            ViolationKind::UnpublishedEpoch => "unpublished-epoch",
            ViolationKind::TornEpochTag => "torn-epoch-tag",
            ViolationKind::OutcomePartition => "outcome-partition",
        }
    }

    /// Inverse of [`ViolationKind::name`].
    pub fn parse(s: &str) -> Option<ViolationKind> {
        [
            ViolationKind::ReleasedWhileAllowed,
            ViolationKind::GateUnbounded,
            ViolationKind::IllegalBreakerTransition,
            ViolationKind::HalfOpenStuck,
            ViolationKind::UnpublishedEpoch,
            ViolationKind::TornEpochTag,
            ViolationKind::OutcomePartition,
        ]
        .into_iter()
        .find(|k| k.name() == s)
    }
}

/// An invariant breach, attached to the exact step that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant.
    pub kind: ViolationKind,
    /// The agent whose step surfaced it.
    pub agent: u16,
    /// Machine step count at the violating step (1-based).
    pub step: u32,
    /// Human-readable specifics (deterministic, so replays compare equal).
    pub detail: String,
}

// ---------------------------------------------------------------------------
// Footprints
// ---------------------------------------------------------------------------

/// Shared-word footprint of one step, as read/write bitmasks. Bits:
/// current word, EpochCell generation, breaker word, recorded Tseq, then
/// one bit per abort shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Words read.
    pub reads: u32,
    /// Words written.
    pub writes: u32,
}

/// The packed current-state word.
pub const W_CUR: u32 = 1 << 0;
/// The EpochCell generation counter (and the published model list).
pub const W_GEN: u32 = 1 << 1;
/// The breaker's state + window counters (coarsened to one word).
pub const W_BRK: u32 = 1 << 2;
/// The recorded Tseq / sliding window.
pub const W_REC: u32 = 1 << 3;

/// The abort shard of worker `t`.
pub fn w_shard(t: u16) -> u32 {
    1 << (4 + t as u32)
}

impl Footprint {
    fn read(&mut self, w: u32) {
        self.reads |= w;
    }

    fn write(&mut self, w: u32) {
        self.writes |= w;
    }

    /// Two steps conflict (are dependent) iff one writes a word the other
    /// touches. Disjoint footprints commute *and* leave each other's
    /// footprint unchanged, which is the property the sleep-set and
    /// persistent-singleton pruning rely on.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        (self.writes & (other.reads | other.writes)) != 0
            || (other.writes & (self.reads | self.writes)) != 0
    }

    fn union(&mut self, other: &Footprint) {
        self.reads |= other.reads;
        self.writes |= other.writes;
    }
}

// ---------------------------------------------------------------------------
// Breaker model
// ---------------------------------------------------------------------------

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

fn breaker_state_name(s: u8) -> &'static str {
    match s {
        CLOSED => "Closed",
        OPEN => "Open",
        _ => "HalfOpen",
    }
}

/// Integer mirror of [`crate::breaker::Breaker`] (verdict-less: no drift
/// tracker attached). The conformance suite drives a real `Breaker` in
/// lockstep with this model to pin the mirroring.
#[derive(Clone, PartialEq)]
struct BreakerModel {
    state: u8,
    calls: u64,
    released: u64,
    win_aborts: u64,
    win_commits: u64,
    open_calls: u64,
    consec_released: Vec<u32>,
    abort_streaks: Vec<u32>,
    trips: u32,
    probes: u32,
    recloses: u32,
}

/// A transition the breaker model took: `(from, to, cause)`.
type BreakerEdge = (u8, u8, &'static str);

impl BreakerModel {
    fn new(threads: u16) -> Self {
        BreakerModel {
            state: CLOSED,
            calls: 0,
            released: 0,
            win_aborts: 0,
            win_commits: 0,
            open_calls: 0,
            consec_released: vec![0; threads as usize],
            abort_streaks: vec![0; threads as usize],
            trips: 0,
            probes: 0,
            recloses: 0,
        }
    }

    fn bypass(&self) -> bool {
        self.state == OPEN
    }

    fn transition_to(&mut self, to: u8, cause: &'static str) -> Option<BreakerEdge> {
        let from = self.state;
        if from == to {
            return None;
        }
        self.state = to;
        self.calls = 0;
        self.released = 0;
        self.win_aborts = 0;
        self.win_commits = 0;
        self.open_calls = 0;
        self.consec_released.iter_mut().for_each(|c| *c = 0);
        self.abort_streaks.iter_mut().for_each(|c| *c = 0);
        match to {
            OPEN => self.trips += 1,
            HALF_OPEN => self.probes += 1,
            _ => self.recloses += 1,
        }
        Some((from, to, cause))
    }

    /// Mirror of `Breaker::note_gate`. `mutation` flips the cooldown
    /// target (TwoRungClose) or suppresses the probe judgment
    /// (ProbeNoJudge).
    fn note_gate(
        &mut self,
        thread: u16,
        released: bool,
        cfg: &MckBreakerConfig,
        mutation: Option<Mutation>,
    ) -> Option<BreakerEdge> {
        match self.state {
            OPEN => {
                self.open_calls += 1;
                if self.open_calls >= cfg.cooldown {
                    // MUTATION two-rung-close: jump straight back to
                    // Closed, skipping the Half-Open probe.
                    let to = if mutation == Some(Mutation::TwoRungClose) {
                        CLOSED
                    } else {
                        HALF_OPEN
                    };
                    return self.transition_to(to, "cooldown");
                }
                None
            }
            state => {
                let streak = if released {
                    self.released += 1;
                    self.consec_released[thread as usize] += 1;
                    self.consec_released[thread as usize]
                } else {
                    self.consec_released[thread as usize] = 0;
                    0
                };
                if streak >= cfg.starvation_releases {
                    return self.transition_to(OPEN, "starvation");
                }
                self.calls += 1;
                let win =
                    if state == HALF_OPEN { cfg.probe_window } else { cfg.window };
                if self.calls >= win {
                    // MUTATION probe-no-judge: the Half-Open probe window
                    // fills but the judgment never runs.
                    if state == HALF_OPEN && mutation == Some(Mutation::ProbeNoJudge) {
                        return None;
                    }
                    return self.evaluate_window(cfg);
                }
                None
            }
        }
    }

    /// Mirror of `Breaker::evaluate_window` with no drift report.
    fn evaluate_window(&mut self, cfg: &MckBreakerConfig) -> Option<BreakerEdge> {
        let calls = std::mem::take(&mut self.calls);
        let released = std::mem::take(&mut self.released);
        let aborts = std::mem::take(&mut self.win_aborts);
        let commits = std::mem::take(&mut self.win_commits);
        if calls == 0 {
            return None;
        }
        let released_pct = 100.0 * released as f64 / calls as f64;
        let abort_pct = if aborts + commits > 0 {
            100.0 * aborts as f64 / (aborts + commits) as f64
        } else {
            0.0
        };
        match self.state {
            CLOSED => {
                if abort_pct >= cfg.max_abort_pct {
                    return self.transition_to(OPEN, "abort-storm");
                }
                if released_pct >= cfg.max_released_pct {
                    return self.transition_to(OPEN, "released-rate");
                }
                None
            }
            HALF_OPEN => {
                let healthy =
                    released_pct < cfg.max_released_pct && abort_pct < cfg.max_abort_pct;
                if healthy {
                    self.transition_to(CLOSED, "probe")
                } else {
                    self.transition_to(OPEN, "probe")
                }
            }
            _ => None,
        }
    }

    /// Mirror of `Breaker::note_abort`.
    fn note_abort(&mut self, thread: u16, cfg: &MckBreakerConfig) -> Option<BreakerEdge> {
        if self.state == OPEN {
            return None;
        }
        self.win_aborts += 1;
        self.abort_streaks[thread as usize] += 1;
        if self.abort_streaks[thread as usize] >= cfg.abort_streak {
            return self.transition_to(OPEN, "abort-storm");
        }
        None
    }

    /// Mirror of `Breaker::note_commit`.
    fn note_commit(&mut self, thread: u16) {
        if self.state == OPEN {
            return;
        }
        self.win_commits += 1;
        self.abort_streaks[thread as usize] = 0;
    }

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(
            self.state as u64
                | self.calls << 8
                | self.released << 20
                | self.win_aborts << 32
                | self.win_commits << 44,
        );
        out.push(self.open_calls);
        let mut packed = 0u64;
        for (i, (&c, &a)) in
            self.consec_released.iter().zip(&self.abort_streaks).enumerate()
        {
            packed ^= ((c.min(255) as u64) | (a.min(255) as u64) << 8)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15 ^ (i as u64) << 1 | 1);
        }
        out.push(packed);
    }
}

// ---------------------------------------------------------------------------
// Machine state
// ---------------------------------------------------------------------------

/// Where a worker is inside its current window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    GateEntry,
    GateCheck,
    AbortStep,
    CommitEntry,
    CommitApply,
    Done,
}

impl Phase {
    fn code(self) -> u64 {
        match self {
            Phase::GateEntry => 0,
            Phase::GateCheck => 1,
            Phase::AbortStep => 2,
            Phase::CommitEntry => 3,
            Phase::CommitApply => 4,
            Phase::Done => 5,
        }
    }
}

#[derive(Clone, PartialEq)]
struct ThreadCtx {
    window: u16,
    phase: Phase,
    must_abort: bool,
    /// Epoch pinned at GateEntry / CommitEntry.
    pinned: u32,
    /// Current-word examinations this gate call has performed.
    checks: u32,
    gate_waited: bool,
}

/// Rebuilt-model cache shared by every state cloned from one `initial`:
/// the model a swap installs is a pure function of the recorded Tseq, so
/// identical windows across branches reuse one build. Keyed by
/// `(chain-hash, len)` of the window.
type SwapCache = Arc<Mutex<HashMap<(u64, usize), Arc<GuidedModel>>>>;

/// One atomic step's result: the successor state, the violation the step
/// surfaced (if any — the path ends there), and the exact shared-word
/// footprint the step touched (monitors included), which is what the
/// POR dependency relation keys on.
pub struct StepEffect {
    /// Post-state.
    pub state: MachineState,
    /// Invariant breach attached to this step, if any.
    pub violation: Option<Violation>,
    /// Exact words read/written by this step.
    pub footprint: Footprint,
}

/// A reachable state of the protocol model. Clone is cheap-ish (small
/// vectors + Arc bumps); equality for exploration purposes is via
/// [`MachineState::encode`].
#[derive(Clone)]
pub struct MachineState {
    cfg: Arc<MckConfig>,
    threads: Vec<ThreadCtx>,
    swaps_left: u32,
    /// Packed (epoch, state) current word.
    current: u64,
    /// Published generations; index = epoch id.
    epochs: Vec<Arc<GuidedModel>>,
    /// Fingerprint of each epoch's training sequence (for state identity).
    epoch_sigs: Vec<u64>,
    /// Committed Tseq (also the rebuild window — no cap at model scale).
    recorded: Vec<StateKey>,
    /// Per-thread pending-abort shards.
    shards: Vec<Vec<Pair>>,
    breaker: Option<BreakerModel>,
    cache: SwapCache,
    /// Gate outcome counters (bookkeeping; excluded from state identity —
    /// nothing in the protocol reads them back).
    pub passed: u64,
    /// Waited-outcome count.
    pub waited: u64,
    /// Released-outcome count.
    pub released: u64,
    /// Gate calls started.
    pub gate_calls: u64,
    /// Steps taken along the path that produced this state (bookkeeping).
    pub steps: u32,
}

/// Chain-hash of a key sequence (for epoch signatures and cache keys).
fn seq_sig(keys: &[StateKey]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for k in keys {
        h = (h ^ k.hash64()).wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl MachineState {
    /// The initial state: seed model published as epoch 0, every worker
    /// at its first gate, breaker Closed, empty Tseq.
    pub fn initial(cfg: &MckConfig) -> MachineState {
        cfg.validate().expect("invalid mck config");
        let threads = (0..cfg.threads)
            .map(|t| ThreadCtx {
                window: 0,
                phase: Phase::GateEntry,
                must_abort: cfg.wants_abort(t, 0),
                pinned: 0,
                checks: 0,
                gate_waited: false,
            })
            .collect();
        MachineState {
            threads,
            swaps_left: cfg.swaps,
            current: UNKNOWN_WORD,
            epochs: vec![cfg.seed_model()],
            epoch_sigs: vec![0x5eed],
            recorded: Vec::new(),
            shards: vec![Vec::new(); cfg.threads as usize],
            breaker: cfg.breaker.as_ref().map(|_| BreakerModel::new(cfg.threads)),
            cache: Arc::new(Mutex::new(HashMap::new())),
            cfg: Arc::new(cfg.clone()),
            passed: 0,
            waited: 0,
            released: 0,
            gate_calls: 0,
            steps: 0,
        }
    }

    /// The configuration this state belongs to.
    pub fn config(&self) -> &MckConfig {
        &self.cfg
    }

    /// The latest published generation id.
    pub fn generation(&self) -> u32 {
        (self.epochs.len() - 1) as u32
    }

    /// The current word's `(epoch, state)` tag.
    pub fn current_tag(&self) -> (u32, u32) {
        unpack_state(self.current)
    }

    /// The recorded Tseq so far.
    pub fn recorded(&self) -> &[StateKey] {
        &self.recorded
    }

    /// Hot-swaps performed so far.
    pub fn swaps_done(&self) -> u32 {
        self.cfg.swaps - self.swaps_left
    }

    /// Breaker (trips, probes, recloses) so far; zeros when disabled.
    pub fn breaker_counters(&self) -> (u32, u32, u32) {
        self.breaker.as_ref().map_or((0, 0, 0), |b| (b.trips, b.probes, b.recloses))
    }

    /// Breaker state code (0 Closed, 1 Open, 2 Half-Open); Closed when
    /// disabled.
    pub fn breaker_state(&self) -> u8 {
        self.breaker.as_ref().map_or(CLOSED, |b| b.state)
    }

    /// Whether agent `a`'s next step exists. Workers block on nothing;
    /// the manager is enabled once there is a window to rebuild from.
    pub fn enabled(&self, agent: u16) -> bool {
        if let Some(t) = self.threads.get(agent as usize) {
            return t.phase != Phase::Done;
        }
        agent == self.cfg.threads && self.swaps_left > 0 && !self.recorded.is_empty()
    }

    /// All enabled agents, ascending.
    pub fn enabled_agents(&self) -> Vec<u16> {
        (0..self.cfg.agents()).filter(|&a| self.enabled(a)).collect()
    }

    /// Agents that may still take steps in the future (enabled now or
    /// temporarily blocked — the manager waiting for a first commit).
    pub fn live_agents(&self) -> Vec<u16> {
        (0..self.cfg.agents())
            .filter(|&a| {
                if let Some(t) = self.threads.get(a as usize) {
                    t.phase != Phase::Done
                } else {
                    self.swaps_left > 0
                }
            })
            .collect()
    }

    /// A complete (maximal) execution: nothing can move.
    pub fn is_complete(&self) -> bool {
        self.enabled_agents().is_empty()
    }

    /// Stable identity for exploration: everything behavior-relevant. The
    /// recorded Tseq and epoch lineage are folded into chain-hashes
    /// (hash-compaction, as in SPIN's `-DHC`): a collision would merge two
    /// distinct states, with probability ~|states|²/2⁶⁴ — negligible at
    /// model scale and documented in DESIGN.md §15.
    pub fn encode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.threads.len() + 6);
        for t in &self.threads {
            out.push(
                (t.window as u64) << 48
                    | t.phase.code() << 44
                    | (t.must_abort as u64) << 43
                    | (t.gate_waited as u64) << 42
                    | (t.checks as u64) << 32
                    | t.pinned as u64,
            );
        }
        out.push(self.swaps_left as u64);
        out.push(self.current);
        out.push(seq_sig(&self.recorded) ^ (self.recorded.len() as u64) << 1);
        let mut esig = 0u64;
        for (i, s) in self.epoch_sigs.iter().enumerate() {
            esig ^= s.wrapping_mul(0x9e37_79b9_7f4a_7c15 ^ (i as u64) << 1 | 1);
        }
        out.push(esig ^ (self.epoch_sigs.len() as u64) << 32);
        let mut shard_sig = 0u64;
        for (i, s) in self.shards.iter().enumerate() {
            shard_sig ^= (seq_sig_pairs(s) ^ (s.len() as u64) << 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15 ^ (i as u64) << 1 | 1);
        }
        out.push(shard_sig);
        if let Some(b) = &self.breaker {
            b.encode(&mut out);
        }
        out
    }

    /// 64-bit fingerprint of [`MachineState::encode`] (for trace
    /// fingerprint chains).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in self.encode() {
            h = (h ^ w).wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        }
        h
    }

    // -- step execution ----------------------------------------------------

    /// Execute agent `a`'s next atomic step. Pure: equal states and equal
    /// agents produce equal effects. Panics if `a` is not enabled (the
    /// explorer and the schedule replayer only dispatch enabled agents).
    pub fn step(&self, agent: u16) -> StepEffect {
        assert!(self.enabled(agent), "agent {agent} is not enabled");
        let mut s = self.clone();
        s.steps += 1;
        let mut fp = Footprint::default();
        let mut violation = if agent < s.cfg.threads {
            s.worker_step(agent, &mut fp)
        } else {
            s.manager_step(&mut fp)
        };
        if violation.is_none() {
            violation = s.check_global(agent);
        }
        StepEffect { state: s, violation, footprint: fp }
    }

    /// Global state invariants, checked after every step.
    ///
    /// These monitor reads are deliberately NOT added to the step's
    /// footprint: a breach of a global invariant is *created* by the step
    /// that writes the monitored word (the commit that stores a bad tag,
    /// the note_gate that pushes the probe counter past its window), and
    /// that step's own footprint already contains the write, so the
    /// monitor fires at the writing step in every interleaving where the
    /// write occurs — including the POR representative. Steps that leave
    /// the monitored words untouched cannot change the verdict (it was
    /// already checked when the word was last written). Keeping the
    /// monitors out of the dependency relation preserves the reduction.
    fn check_global(&self, agent: u16) -> Option<Violation> {
        let (e, st) = unpack_state(self.current);
        if e as usize >= self.epochs.len() {
            return Some(self.violation(
                ViolationKind::UnpublishedEpoch,
                agent,
                format!("current word tagged epoch {e}, only {} published", self.epochs.len()),
            ));
        }
        if st != UNKNOWN && st as usize >= self.epochs[e as usize].num_states() {
            return Some(self.violation(
                ViolationKind::TornEpochTag,
                agent,
                format!(
                    "state id {st} out of range for epoch {e} ({} states)",
                    self.epochs[e as usize].num_states()
                ),
            ));
        }
        if let (Some(b), Some(bc)) = (&self.breaker, &self.cfg.breaker) {
            if b.state == HALF_OPEN && b.calls > bc.probe_window {
                return Some(self.violation(
                    ViolationKind::HalfOpenStuck,
                    agent,
                    format!(
                        "Half-Open holds {} calls, probe window is {}",
                        b.calls, bc.probe_window
                    ),
                ));
            }
        }
        None
    }

    /// End-of-path invariant: outcomes partition resolved gate calls.
    /// (Structural in the unmutated machine; kept as a monitor so counter
    /// bookkeeping bugs in the machine itself get caught.)
    pub fn check_complete(&self) -> Option<Violation> {
        debug_assert!(self.is_complete());
        let resolved = self.passed + self.waited + self.released;
        if resolved != self.gate_calls {
            return Some(self.violation(
                ViolationKind::OutcomePartition,
                u16::MAX,
                format!(
                    "passed {} + waited {} + released {} != {} gate calls",
                    self.passed, self.waited, self.released, self.gate_calls
                ),
            ));
        }
        None
    }

    fn violation(&self, kind: ViolationKind, agent: u16, detail: String) -> Violation {
        Violation { kind, agent, step: self.steps, detail }
    }

    fn allowed_word(&self, word: u64, pinned: u32, who: Pair) -> bool {
        let (e, s) = unpack_state(word);
        s == UNKNOWN
            || e != pinned
            || self.epochs[pinned as usize].is_allowed(StateId(s), who)
    }

    fn worker_step(&mut self, t: u16, fp: &mut Footprint) -> Option<Violation> {
        let phase = self.threads[t as usize].phase;
        match phase {
            Phase::GateEntry => self.gate_entry(t, fp),
            Phase::GateCheck => self.gate_check(t, fp),
            Phase::AbortStep => self.abort_step(t, fp),
            Phase::CommitEntry => {
                // Mirror of on_commit's own EpochCell::load.
                fp.read(W_GEN);
                let gen = self.generation();
                let ctx = &mut self.threads[t as usize];
                ctx.pinned = gen;
                ctx.phase = Phase::CommitApply;
                None
            }
            Phase::CommitApply => self.commit_apply(t, fp),
            Phase::Done => unreachable!("Done agents are never enabled"),
        }
    }

    /// Bypass check + epoch resolution (one step; see module docs for the
    /// coarsening argument).
    fn gate_entry(&mut self, t: u16, fp: &mut Footprint) -> Option<Violation> {
        self.gate_calls += 1;
        if self.breaker.is_some() {
            fp.read(W_BRK);
            if self.breaker.as_ref().unwrap().bypass() {
                // Fail-open: the gate is this one (counted) load.
                return self.resolve_gate(t, Outcome::Passed, fp);
            }
        }
        fp.read(W_GEN);
        let gen = self.generation();
        let ctx = &mut self.threads[t as usize];
        ctx.pinned = gen;
        ctx.checks = 0;
        ctx.gate_waited = false;
        ctx.phase = Phase::GateCheck;
        None
    }

    /// One examination of the current word — mirror of one trip around
    /// `gate_with`'s loop (or its final re-check).
    fn gate_check(&mut self, t: u16, fp: &mut Footprint) -> Option<Violation> {
        let k = self.cfg.k_retries;
        let ctx = &self.threads[t as usize];
        let (pinned, checks, waited) = (ctx.pinned, ctx.checks, ctx.gate_waited);
        if checks > k {
            // Bounded-liveness monitor: the (k+2)-th examination means the
            // release never fired.
            return Some(self.violation(
                ViolationKind::GateUnbounded,
                t,
                format!("gate examined the word {} times, budget is k+1 = {}", checks + 1, k + 1),
            ));
        }
        fp.read(W_CUR);
        let who = self.cfg.who(t, self.threads[t as usize].window);
        let allowed = self.allowed_word(self.current, pinned, who);
        let is_final = checks == k;
        if !is_final {
            if allowed {
                let outcome = if waited { Outcome::Waited } else { Outcome::Passed };
                return self.resolve_gate(t, outcome, fp);
            }
            let ctx = &mut self.threads[t as usize];
            ctx.checks += 1;
            ctx.gate_waited = true;
            return None;
        }
        // The final re-examination after the retry budget.
        match self.cfg.mutation {
            Some(Mutation::SkipReleaseRecheck) => {
                // MUTATION: release on the *previous* verdict without
                // re-examining. (The monitor inside resolve_gate reads the
                // true word and will object on the right interleavings.)
                self.resolve_gate(t, Outcome::Released, fp)
            }
            Some(Mutation::NoRelease) if !allowed => {
                // MUTATION: ignore the budget and keep examining.
                self.threads[t as usize].checks += 1;
                None
            }
            _ => {
                if allowed {
                    let outcome = if waited { Outcome::Waited } else { Outcome::Passed };
                    self.resolve_gate(t, outcome, fp)
                } else {
                    self.resolve_gate(t, Outcome::Released, fp)
                }
            }
        }
    }

    /// Count one gate resolution — mirror of `count_outcome`, including
    /// the fail-open store when the breaker trips Open.
    fn resolve_gate(
        &mut self,
        t: u16,
        outcome: Outcome,
        fp: &mut Footprint,
    ) -> Option<Violation> {
        let released = outcome == Outcome::Released;
        if released {
            // Safety monitor: a release must follow a final re-examination
            // that found the word disallowed. Reads the true word, so the
            // mutated skip still leaves the dependency in the footprint.
            fp.read(W_CUR);
            let who = self.cfg.who(t, self.threads[t as usize].window);
            let pinned = self.threads[t as usize].pinned;
            if self.allowed_word(self.current, pinned, who) {
                return Some(self.violation(
                    ViolationKind::ReleasedWhileAllowed,
                    t,
                    format!(
                        "released {who:?} but the current word {:#x} allows it under epoch {pinned}",
                        self.current
                    ),
                ));
            }
        }
        match outcome {
            Outcome::Passed => self.passed += 1,
            Outcome::Waited => self.waited += 1,
            Outcome::Released => self.released += 1,
        }
        let mut edge = None;
        if let (Some(b), Some(bc)) = (&mut self.breaker, &self.cfg.breaker) {
            fp.read(W_BRK);
            fp.write(W_BRK);
            edge = b.note_gate(t, released, bc, self.cfg.mutation);
            if let Some((_, to, _)) = edge {
                if to == OPEN {
                    // Fail-open: one store releases every spinner.
                    fp.write(W_CUR);
                    self.current = UNKNOWN_WORD;
                }
            }
        }
        self.threads[t as usize].phase = if self.threads[t as usize].must_abort {
            Phase::AbortStep
        } else {
            Phase::CommitEntry
        };
        self.check_breaker_edge(t, edge)
    }

    /// The breaker automaton monitor: only one-rung edges are legal.
    fn check_breaker_edge(&self, agent: u16, edge: Option<BreakerEdge>) -> Option<Violation> {
        let (from, to, cause) = edge?;
        let legal = matches!(
            (from, to),
            (CLOSED, OPEN) | (OPEN, HALF_OPEN) | (HALF_OPEN, CLOSED) | (HALF_OPEN, OPEN)
        );
        if legal {
            return None;
        }
        Some(self.violation(
            ViolationKind::IllegalBreakerTransition,
            agent,
            format!(
                "{} -> {} ({cause}) is not a legal one-rung edge",
                breaker_state_name(from),
                breaker_state_name(to)
            ),
        ))
    }

    /// Scripted abort: shard push + breaker notification, then re-gate.
    /// (`on_abort` discards the breaker transition — no fail-open store —
    /// and so does the model.)
    fn abort_step(&mut self, t: u16, fp: &mut Footprint) -> Option<Violation> {
        let who = self.cfg.who(t, self.threads[t as usize].window);
        fp.write(w_shard(t));
        self.shards[t as usize].push(who);
        let mut edge = None;
        if let (Some(b), Some(bc)) = (&mut self.breaker, &self.cfg.breaker) {
            fp.read(W_BRK);
            fp.write(W_BRK);
            edge = b.note_abort(t, bc);
        }
        let ctx = &mut self.threads[t as usize];
        ctx.must_abort = false;
        ctx.phase = Phase::GateEntry;
        self.check_breaker_edge(t, edge)
    }

    /// Drain shards, classify, record, tag — the serialized commit body.
    fn commit_apply(&mut self, t: u16, fp: &mut Footprint) -> Option<Violation> {
        let window = self.threads[t as usize].window;
        let who = self.cfg.who(t, window);
        let mut aborts = Vec::new();
        for u in 0..self.cfg.threads {
            // The real tracker reads the occupancy bitmap (a word every
            // committer and aborter shares) and drains the flagged shards;
            // touching every shard keeps the dependency faithful.
            fp.read(w_shard(u));
            if !self.shards[u as usize].is_empty() {
                fp.write(w_shard(u));
                aborts.append(&mut self.shards[u as usize]);
            }
        }
        let key = StateKey::new(aborts, who);
        fp.write(W_REC);
        self.recorded.push(key.clone());
        let pinned = self.threads[t as usize].pinned;
        let next = self.epochs[pinned as usize]
            .id_of_parts(key.aborts(), key.commit())
            .map_or(UNKNOWN, |id| id.0);
        let tag = if self.cfg.mutation == Some(Mutation::TornRetag) {
            // MUTATION: classify under the pinned epoch but tag the word
            // with the *latest* generation — the torn old/new mix the
            // epoch protocol exists to prevent.
            fp.read(W_GEN);
            self.generation()
        } else {
            pinned
        };
        fp.write(W_CUR);
        self.current = pack_state(tag, next);
        // Tag-integrity monitor: the stored id must be the id the *tagged*
        // epoch's model assigns to this key.
        let expected = self.epochs[tag as usize]
            .id_of_parts(key.aborts(), key.commit())
            .map_or(UNKNOWN, |id| id.0);
        if next != expected {
            return Some(self.violation(
                ViolationKind::TornEpochTag,
                t,
                format!(
                    "committed key classified as {next} but epoch {tag}'s model says {expected}"
                ),
            ));
        }
        if let Some(b) = &mut self.breaker {
            fp.read(W_BRK);
            fp.write(W_BRK);
            b.note_commit(t);
        }
        let next_window = window + 1;
        let ctx = &mut self.threads[t as usize];
        if next_window < self.cfg.windows {
            ctx.window = next_window;
            ctx.phase = Phase::GateEntry;
            ctx.must_abort = self.cfg.wants_abort(t, next_window);
        } else {
            ctx.window = next_window;
            ctx.phase = Phase::Done;
        }
        None
    }

    /// One hot-swap: rebuild from the recorded window and publish the next
    /// generation (install-then-bump is a single step — no reader can see
    /// the new id without the new model, exactly as in `ModelManager`).
    fn manager_step(&mut self, fp: &mut Footprint) -> Option<Violation> {
        fp.read(W_REC);
        fp.write(W_GEN);
        let sig = seq_sig(&self.recorded);
        let model = {
            let mut cache = self.cache.lock().unwrap();
            cache
                .entry((sig, self.recorded.len()))
                .or_insert_with(|| {
                    Arc::new(GuidedModel::build(
                        Tsa::from_runs(&[self.recorded.clone()]),
                        &self.cfg.guidance(),
                    ))
                })
                .clone()
        };
        self.epochs.push(model);
        self.epoch_sigs.push(sig ^ (self.recorded.len() as u64) << 1 | 1);
        self.swaps_left -= 1;
        None
    }

    // -- POR support -------------------------------------------------------

    /// Over-approximation of every footprint agent `a` may produce from
    /// here to the end of its program — the stubborn-set side condition
    /// for the persistent-singleton rule.
    pub fn future_footprint(&self, agent: u16) -> Footprint {
        let mut fp = Footprint::default();
        if agent as usize >= self.threads.len() {
            if self.swaps_left > 0 {
                fp.read(W_REC);
                fp.write(W_GEN);
            }
            return fp;
        }
        let t = agent;
        let ctx = &self.threads[t as usize];
        if ctx.phase == Phase::Done {
            return fp;
        }
        let gates_ahead = matches!(ctx.phase, Phase::GateEntry | Phase::GateCheck)
            || ctx.must_abort
            || ctx.phase == Phase::AbortStep
            || ctx.window + 1 < self.cfg.windows;
        let mut aborts_ahead = ctx.must_abort || ctx.phase == Phase::AbortStep;
        for w in ctx.window + 1..self.cfg.windows {
            aborts_ahead |= self.cfg.wants_abort(t, w);
        }
        if gates_ahead {
            fp.read(W_CUR);
            fp.read(W_GEN);
            if self.breaker.is_some() {
                fp.read(W_BRK);
                fp.write(W_BRK);
                fp.write(W_CUR); // fail-open store on trip
            }
        }
        if aborts_ahead {
            fp.write(w_shard(t));
            if self.breaker.is_some() {
                fp.read(W_BRK);
                fp.write(W_BRK);
            }
        }
        // Every live worker commits at least once more.
        let mut commit = Footprint::default();
        commit.read(W_GEN);
        commit.write(W_CUR);
        commit.write(W_REC);
        for u in 0..self.cfg.threads {
            commit.read(w_shard(u));
            commit.write(w_shard(u));
        }
        if self.breaker.is_some() {
            commit.read(W_BRK);
            commit.write(W_BRK);
        }
        fp.union(&commit);
        fp
    }

    // -- op-granularity driver (conformance bridge) ------------------------

    /// Run agent `a` to its next operation boundary (gate resolution,
    /// abort done, commit done, swap done) — at most `limit` steps. Used
    /// by the conformance suite to drive the machine and the real
    /// `GuidedHook` through the *same* op schedule. Returns the violation
    /// that ended the run early, if any.
    pub fn run_op(&mut self, agent: u16, limit: u32) -> Option<Violation> {
        for _ in 0..limit {
            if !self.enabled(agent) {
                return None;
            }
            let start_phase =
                self.threads.get(agent as usize).map(|c| (c.phase, c.window));
            let eff = self.step(agent);
            *self = eff.state;
            if eff.violation.is_some() {
                return eff.violation;
            }
            if agent as usize >= self.threads.len() {
                return None; // a swap is one step
            }
            let ctx = &self.threads[agent as usize];
            let boundary = matches!(
                ctx.phase,
                Phase::GateEntry | Phase::AbortStep | Phase::CommitEntry | Phase::Done
            );
            // A gate op ends when the phase leaves the gate; an abort op
            // and a commit op end when the phase returns to a boundary
            // different from where they started.
            if boundary && start_phase.map(|(p, _)| p) != Some(ctx.phase) {
                return None;
            }
            if boundary && matches!(ctx.phase, Phase::Done) {
                return None;
            }
            if boundary
                && start_phase.is_some_and(|(p, w)| {
                    p == ctx.phase && w != ctx.window
                })
            {
                return None;
            }
        }
        panic!("run_op did not reach an op boundary in {limit} steps");
    }

    /// Whether the worker is at an op boundary about to gate.
    pub fn at_gate(&self, t: u16) -> bool {
        self.threads.get(t as usize).is_some_and(|c| c.phase == Phase::GateEntry)
    }

    /// Whether the worker is at an op boundary about to abort.
    pub fn at_abort(&self, t: u16) -> bool {
        self.threads.get(t as usize).is_some_and(|c| c.phase == Phase::AbortStep)
    }

    /// Whether the worker is at an op boundary about to commit.
    pub fn at_commit(&self, t: u16) -> bool {
        self.threads.get(t as usize).is_some_and(|c| c.phase == Phase::CommitEntry)
    }

    /// Whether the worker has finished all its windows.
    pub fn done(&self, t: u16) -> bool {
        self.threads.get(t as usize).is_some_and(|c| c.phase == Phase::Done)
    }
}

fn seq_sig_pairs(pairs: &[Pair]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in pairs {
        h = (h ^ p.packed() as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Passed,
    Waited,
    Released,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{Breaker, BreakerConfig, BreakerState};

    /// Deterministic round-robin drain of a configuration.
    fn drain(cfg: &MckConfig) -> MachineState {
        let mut s = MachineState::initial(cfg);
        let mut guard = 0;
        while !s.is_complete() {
            let agents = s.enabled_agents();
            let a = agents[guard % agents.len()];
            let eff = s.step(a);
            assert!(eff.violation.is_none(), "trunk violation: {:?}", eff.violation);
            s = eff.state;
            guard += 1;
            assert!(guard < 100_000, "round-robin drain did not terminate");
        }
        s
    }

    #[test]
    fn step_is_a_pure_function_of_state() {
        let cfg = MckConfig::ci();
        let s = MachineState::initial(&cfg);
        let a = s.step(0);
        let b = s.step(0);
        assert_eq!(a.state.encode(), b.state.encode());
        assert_eq!(a.footprint, b.footprint);
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.state.fingerprint(), b.state.fingerprint());
    }

    #[test]
    fn round_robin_drain_completes_clean_and_partitions_outcomes() {
        let s = drain(&MckConfig::ci());
        assert!(s.is_complete());
        assert_eq!(s.check_complete(), None);
        assert_eq!(s.passed + s.waited + s.released, s.gate_calls);
        assert_eq!(s.recorded().len() as u64, 3 * 2); // threads * windows commits
        assert_eq!(s.swaps_done(), 1);
    }

    #[test]
    fn abort_mask_windows_the_abort_into_the_next_commit() {
        let cfg = MckConfig { abort_mask: 0b1, swaps: 0, breaker: None, ..MckConfig::ci() };
        let s = drain(&cfg);
        let with_aborts =
            s.recorded().iter().filter(|k| !k.aborts().is_empty()).count();
        assert_eq!(with_aborts, 1, "exactly one scripted abort must be recorded");
    }

    #[test]
    fn seed_model_actually_gates() {
        let cfg = MckConfig::ci();
        let model = cfg.seed_model();
        // From "thread 0 committed", only thread 1's pair is allowed.
        let id = model.id_of_parts(&[], cfg.who(0, 0)).expect("state exists");
        assert!(model.is_allowed(id, cfg.who(1, 0)));
        assert!(!model.is_allowed(id, cfg.who(0, 0)));
        assert!(!model.is_allowed(id, cfg.who(2, 0)));
    }

    #[test]
    fn enabled_manager_waits_for_a_window() {
        let cfg = MckConfig::ci();
        let s = MachineState::initial(&cfg);
        assert!(!s.enabled(cfg.threads), "no window to rebuild from yet");
        assert!(s.enabled(0) && s.enabled(1) && s.enabled(2));
    }

    #[test]
    fn footprints_mark_the_words_each_step_touches() {
        let cfg = MckConfig::ci();
        let s = MachineState::initial(&cfg);
        let entry = s.step(0);
        assert_eq!(entry.footprint.reads & W_GEN, W_GEN, "gate entry resolves the epoch");
        let check = entry.state.step(0);
        assert_eq!(check.footprint.reads & W_CUR, W_CUR, "gate check loads the word");
        assert_eq!(check.footprint.writes & W_GEN, 0, "gate never writes the generation");
    }

    /// The machine's breaker mirrors the real `Breaker` event-for-event:
    /// drive both through the same deterministic event stream and compare
    /// state and counters after every event. This pins the mirror the
    /// checker's automaton claims rest on.
    #[test]
    fn breaker_model_locksteps_with_the_real_breaker() {
        let mcfg = MckBreakerConfig::default();
        let rcfg = BreakerConfig {
            window: mcfg.window,
            max_released_pct: mcfg.max_released_pct,
            max_off_model_pct: 100.0,
            max_abort_pct: mcfg.max_abort_pct,
            starvation_releases: mcfg.starvation_releases,
            abort_streak: mcfg.abort_streak,
            cooldown: mcfg.cooldown,
            probe_window: mcfg.probe_window,
        };
        let real = Breaker::new(rcfg, None);
        let mut model = BreakerModel::new(4);
        let mut rng = crate::rng::SplitMix64::new(0x5ca1e);
        for i in 0..4000u64 {
            let t = rng.below(4) as u16;
            match rng.below(5) {
                0 => {
                    real.note_abort(t as usize);
                    model.note_abort(t, &mcfg);
                }
                1 => {
                    real.note_commit(t as usize);
                    model.note_commit(t);
                }
                _ => {
                    let released = rng.below(3) == 0;
                    real.note_gate(t as usize, released);
                    model.note_gate(t, released, &mcfg, None);
                }
            }
            let real_state = match real.state() {
                BreakerState::Closed => CLOSED,
                BreakerState::Open => OPEN,
                BreakerState::HalfOpen => HALF_OPEN,
            };
            assert_eq!(model.state, real_state, "event {i}: state diverged");
            assert_eq!(model.trips as u64, real.trips(), "event {i}: trips diverged");
            assert_eq!(model.probes as u64, real.probes(), "event {i}: probes diverged");
            assert_eq!(
                model.recloses as u64,
                real.recloses(),
                "event {i}: recloses diverged"
            );
        }
        assert!(model.trips > 0, "stream never tripped — lockstep test is vacuous");
        assert!(model.recloses > 0, "stream never re-closed — lockstep test is vacuous");
    }

    #[test]
    fn torn_retag_mutation_requires_a_swap_to_matter() {
        // Without a swap between CommitEntry and CommitApply the latest
        // generation IS the pinned one — the mutation is invisible.
        let cfg = MckConfig {
            mutation: Some(Mutation::TornRetag),
            swaps: 0,
            ..MckConfig::ci()
        };
        let s = drain(&cfg);
        assert!(s.is_complete());
    }

    #[test]
    fn torn_retag_is_caught_when_a_swap_splits_the_commit() {
        let cfg = MckConfig { mutation: Some(Mutation::TornRetag), ..MckConfig::ci() };
        let mut s = MachineState::initial(&cfg);
        // Thread 0: gate through to CommitEntry (unknown word passes).
        while !s.at_commit(0) {
            let eff = s.step(0);
            assert!(eff.violation.is_none());
            s = eff.state;
        }
        let eff = s.step(0); // CommitEntry pins the seed epoch
        s = eff.state;
        // Thread 1 commits fully, giving the manager a window; the swap
        // publishes generation 1 whose ids differ from the seed model's.
        while !s.done(1) {
            let eff = s.step(1);
            assert!(eff.violation.is_none());
            s = eff.state;
        }
        let eff = s.step(cfg.threads); // hot-swap
        assert!(eff.violation.is_none());
        s = eff.state;
        // Thread 0's CommitApply now tags generation 1 with a seed-model id.
        let eff = s.step(0);
        let v = eff.violation.expect("torn retag must be caught");
        assert_eq!(v.kind, ViolationKind::TornEpochTag);
    }

    #[test]
    fn config_validation_rejects_out_of_bound_models() {
        assert!(MckConfig { threads: 0, ..MckConfig::ci() }.validate().is_err());
        assert!(MckConfig { threads: 17, ..MckConfig::ci() }.validate().is_err());
        assert!(MckConfig { k_retries: 0, ..MckConfig::ci() }.validate().is_err());
        assert!(MckConfig::ci().validate().is_ok());
    }
}
