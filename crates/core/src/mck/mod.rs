//! # mck — exhaustive-interleaving model checker for the guidance protocol
//!
//! The adaptive guidance stack is a concurrency protocol with three moving
//! parts: the **guided gate** (bounded spin + k-retry release), the
//! **circuit breaker** (Closed → Open → Half-Open automaton), and the
//! **EpochCell hot-swap** (generation-tagged model replacement). PR 4/PR 5
//! validate it by replaying *single* seeded schedules; this module turns
//! that harness into a verifier: it drives N logical threads through a
//! faithful small-step model of the protocol and enumerates **all**
//! interleavings of a bounded configuration, checking safety and bounded
//! liveness in every reachable state.
//!
//! ## The pieces
//!
//! * [`machine`] — the deterministic small-step operational model: each
//!   step is one atomic action on the shared words the real implementation
//!   touches (the current-state word, the breaker state, the EpochCell
//!   generation, the per-thread abort shards, the recorded Tseq). Invariant
//!   monitors are evaluated on every state and every transition.
//! * [`explore`] — stateful DFS with dynamic partial-order reduction:
//!   sleep sets (Godefroid) plus a persistent/stubborn singleton rule keyed
//!   on the shared-word footprint of each step, with an exact
//!   path-counting pass so the POR reduction factor is a measured claim,
//!   not an estimate.
//! * [`schedule`] — counterexample schedules: minimized, serialized to a
//!   text file, and replayable bit-identically (the replay is a pure
//!   function of the schedule, so two replays produce the same trace
//!   fingerprint or the file is broken).
//!
//! ## Teeth
//!
//! A checker that cannot find bugs proves nothing, so the machine has a
//! built-in mutation mode: [`Mutation`] flips exactly one protocol decision
//! (skip the release re-check, never release, jump the breaker two rungs,
//! never judge the Half-Open probe, tag a commit with the wrong epoch) and
//! the explorer must produce a counterexample for every site. The mutation
//! list is the regression suite for the checker itself.
//!
//! ## What the invariants mean
//!
//! * **Gate outcomes partition calls** — every gate call resolves exactly
//!   once, to exactly one of passed/waited/released (structural monitor +
//!   end-state counter check). This is the accounting PR 1 fixed.
//! * **Released implies disallowed** — a release must follow a *final
//!   re-examination* of the current word; releasing a pair the model
//!   allows is the PR 1 bug reintroduced.
//! * **Breaker walks one rung at a time** — transitions are confined to
//!   Closed→Open, Open→Half-Open, Half-Open→{Closed, Open}.
//! * **No torn model reads** — the current word's `(epoch, state)` tag
//!   always names a published generation, and the state id is the id the
//!   *tagged* epoch's model assigns to the committed key.
//! * **Bounded liveness** — no thread is gated past `k_retries + 1`
//!   examinations (the k-retry release fires on every path), and Half-Open
//!   judges within `probe_window` calls (it always reaches Closed or
//!   Open).

pub mod explore;
pub mod machine;
pub mod schedule;

pub use explore::{explore, naive_interleavings, ExploreOptions, ExploreReport};
pub use machine::{
    MachineState, MckBreakerConfig, MckConfig, StepEffect, Violation, ViolationKind,
};
pub use schedule::{replay_schedule, Counterexample, ReplayOutcome};

/// One flipped protocol decision. The checker must find a violation for
/// every site — that is the proof it has teeth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// The final retry releases *without* re-examining the current word
    /// (the PR 1 bug): caught by `ReleasedWhileAllowed`.
    SkipReleaseRecheck,
    /// The retry budget is ignored — a disallowed gate re-examines
    /// forever: caught by `GateUnbounded`.
    NoRelease,
    /// Cooldown completion jumps Open→Closed directly, skipping the
    /// Half-Open probe: caught by `IllegalBreakerTransition`.
    TwoRungClose,
    /// The Half-Open probe window fills but is never judged: caught by
    /// `HalfOpenStuck`.
    ProbeNoJudge,
    /// A commit classifies against the epoch pinned at entry but tags the
    /// current word with the *latest* generation: caught by
    /// `TornEpochTag`.
    TornRetag,
}

impl Mutation {
    /// Every mutation site, in CLI/reporting order.
    pub const ALL: [Mutation; 5] = [
        Mutation::SkipReleaseRecheck,
        Mutation::NoRelease,
        Mutation::TwoRungClose,
        Mutation::ProbeNoJudge,
        Mutation::TornRetag,
    ];

    /// Stable name used by `--mutate=SITE` and the schedule file header.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SkipReleaseRecheck => "skip-release-recheck",
            Mutation::NoRelease => "no-release",
            Mutation::TwoRungClose => "two-rung-close",
            Mutation::ProbeNoJudge => "probe-no-judge",
            Mutation::TornRetag => "torn-retag",
        }
    }

    /// Inverse of [`Mutation::name`].
    pub fn parse(s: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_names_round_trip() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.name()), Some(m), "{m}");
        }
        assert_eq!(Mutation::parse("definitely-not-a-site"), None);
    }
}
