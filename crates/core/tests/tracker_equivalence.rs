//! Equivalence of the sharded state tracker with the original
//! double-mutex tracker.
//!
//! The sharded tracker (per-thread abort buffers drained under a single
//! commit-side lock) must preserve the windowed attribution semantics of
//! the mutex tracker it replaced: every abort is grouped with the next
//! commit, and a run records exactly one `StateKey` per commit. Two
//! properties pin that down:
//!
//! 1. **Serial equivalence** — under any single-threaded schedule the
//!    recorded Tseq is *identical*, state by state, to what the original
//!    tracker records (the reference implementation lives in this test).
//! 2. **Concurrent conservation** — under a concurrent schedule the
//!    interleaving (and hence the exact window boundaries) is
//!    nondeterministic, but conservation laws are not: one recorded state
//!    per commit, every issued abort appears in exactly one window, and
//!    no pair is invented. Both trackers run the same schedule and must
//!    agree on all of these.

use gstm_core::guidance::{GuidanceHook, RecorderHook};
use gstm_core::{AbortCause, Pair, StateKey, ThreadId, TxnId};
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};

/// Reference reimplementation of the tracker this PR replaced: one global
/// pending buffer and one recorded list, each behind its own mutex.
#[derive(Default)]
struct MutexTracker {
    pending: Mutex<Vec<Pair>>,
    recorded: Mutex<Vec<StateKey>>,
}

impl MutexTracker {
    fn abort(&self, who: Pair) {
        self.pending.lock().unwrap().push(who);
    }

    fn commit(&self, who: Pair) {
        let aborts = std::mem::take(&mut *self.pending.lock().unwrap());
        let key = StateKey::new(aborts, who);
        self.recorded.lock().unwrap().push(key);
    }

    fn take_run(&self) -> Vec<StateKey> {
        self.pending.lock().unwrap().clear();
        std::mem::take(&mut *self.recorded.lock().unwrap())
    }
}

/// One step of a schedule.
#[derive(Clone, Copy, Debug)]
enum Op {
    Abort(Pair),
    Commit(Pair),
}

/// Deterministic xorshift64* generator so failures reproduce exactly.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_schedule(seed: u64, len: usize, txns: u16, threads: u16) -> Vec<Op> {
    let mut rng = XorShift(seed | 1);
    (0..len)
        .map(|_| {
            let pair = Pair::new(
                TxnId(rng.below(txns as u64) as u16),
                ThreadId(rng.below(threads as u64) as u16),
            );
            // Aborts outnumber commits 2:1, biasing toward multi-abort
            // windows (the interesting states).
            if rng.below(3) == 0 {
                Op::Commit(pair)
            } else {
                Op::Abort(pair)
            }
        })
        .collect()
}

fn abort_multiset(run: &[StateKey]) -> HashMap<Pair, usize> {
    let mut counts = HashMap::new();
    for key in run {
        for &p in key.aborts() {
            *counts.entry(p).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn serial_schedules_record_identical_tseqs() {
    for seed in 1..=50u64 {
        let sharded = RecorderHook::new();
        let reference = MutexTracker::default();
        let schedule = random_schedule(seed * 0x9e37, 400, 6, 70);
        for &op in &schedule {
            match op {
                Op::Abort(p) => {
                    sharded.on_abort(p, AbortCause::Validation);
                    reference.abort(p);
                }
                Op::Commit(p) => {
                    sharded.on_commit(p);
                    reference.commit(p);
                }
            }
        }
        let got = sharded.take_run();
        let want = reference.take_run();
        assert_eq!(
            got, want,
            "serial Tseq diverged from the mutex tracker (seed {seed})"
        );
    }
}

#[test]
fn serial_duplicate_aborts_collapse_identically() {
    // The same pair aborting repeatedly within one window dedups in the
    // state key for both trackers (StateKey canonicalization), and thread
    // ids far enough apart to alias onto one shard stay distinct pairs.
    let sharded = RecorderHook::new();
    let reference = MutexTracker::default();
    let a = Pair::new(TxnId(0), ThreadId(1));
    let aliased = Pair::new(TxnId(0), ThreadId(65)); // 65 & 63 == 1
    for _ in 0..3 {
        sharded.on_abort(a, AbortCause::Validation);
        reference.abort(a);
    }
    sharded.on_abort(aliased, AbortCause::Validation);
    reference.abort(aliased);
    let c = Pair::new(TxnId(1), ThreadId(2));
    sharded.on_commit(c);
    reference.commit(c);
    let got = sharded.take_run();
    assert_eq!(got, reference.take_run());
    assert_eq!(got[0].aborts(), &[a, aliased]);
}

#[test]
fn concurrent_schedules_conserve_events() {
    const THREADS: u16 = 8;
    const OPS_PER_THREAD: usize = 2_000;
    for round in 0..4u64 {
        let sharded = Arc::new(RecorderHook::new());
        let reference = Arc::new(MutexTracker::default());
        let barrier = Arc::new(Barrier::new(THREADS as usize));
        let mut handles = Vec::new();
        let mut commits_issued = 0usize;
        let mut aborts_issued: HashMap<Pair, usize> = HashMap::new();
        let mut per_thread: Vec<Vec<Op>> = Vec::new();
        for t in 0..THREADS {
            let schedule =
                random_schedule(round * 1000 + t as u64 + 1, OPS_PER_THREAD, 4, THREADS);
            // Each worker keeps its own thread id on its ops so the
            // shard mapping is exercised the way real STM threads drive
            // it (thread t always aborts as thread t).
            let schedule: Vec<Op> = schedule
                .iter()
                .map(|&op| match op {
                    Op::Abort(p) => Op::Abort(Pair::new(p.txn, ThreadId(t))),
                    Op::Commit(p) => Op::Commit(Pair::new(p.txn, ThreadId(t))),
                })
                .collect();
            for &op in &schedule {
                match op {
                    Op::Commit(_) => commits_issued += 1,
                    Op::Abort(p) => *aborts_issued.entry(p).or_insert(0) += 1,
                }
            }
            per_thread.push(schedule);
        }
        for schedule in per_thread {
            let sharded = Arc::clone(&sharded);
            let reference = Arc::clone(&reference);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for op in schedule {
                    match op {
                        Op::Abort(p) => {
                            sharded.on_abort(p, AbortCause::Validation);
                            reference.abort(p);
                        }
                        Op::Commit(p) => {
                            sharded.on_commit(p);
                            reference.commit(p);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Flush the windows left open at the end of the run so every
        // issued abort is attributed somewhere.
        let closer = Pair::new(TxnId(0), ThreadId(0));
        sharded.on_commit(closer);
        reference.commit(closer);
        commits_issued += 1;

        let got = sharded.take_run();
        let want = reference.take_run();
        assert_eq!(
            got.len(),
            commits_issued,
            "one recorded state per commit (round {round})"
        );
        assert_eq!(got.len(), want.len(), "both trackers agree on run length");
        // Windows may dedup a pair that aborted twice inside one window,
        // so compare at-least-once attribution per pair, plus an upper
        // bound: no pair can appear in more windows than it aborted.
        let got_aborts = abort_multiset(&got);
        for (pair, &issued) in &aborts_issued {
            let seen = got_aborts.get(pair).copied().unwrap_or(0);
            assert!(
                (1..=issued).contains(&seen),
                "pair {pair} aborted {issued}x but appears in {seen} windows (round {round})"
            );
        }
        assert_eq!(
            got_aborts.len(),
            aborts_issued.len(),
            "no pairs invented or lost (round {round})"
        );
        // Commit multiset must match exactly — commits are not windowed.
        let mut got_commits: Vec<Pair> = got.iter().map(StateKey::commit).collect();
        let mut want_commits: Vec<Pair> = want.iter().map(StateKey::commit).collect();
        got_commits.sort_unstable();
        want_commits.sort_unstable();
        assert_eq!(got_commits, want_commits, "commit multisets agree");
    }
}
