//! Gate-outcome accounting invariants under randomized guided schedules.
//!
//! Every `gate` call resolves to exactly one of passed / waited /
//! released, so over any schedule the three [`GateStats`] counters must
//! partition the calls — and the per-thread telemetry cells must agree
//! with both the global stats and each thread's own call count.

use gstm_core::prelude::*;
use gstm_core::telemetry::TELEMETRY_SHARDS;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn p(t: u16, th: u16) -> Pair {
    Pair::new(TxnId(t), ThreadId(th))
}

/// xorshift64* — deterministic per-seed schedule randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Train a model from randomized profiling runs so gating exercises
/// allowed, disallowed, and unknown current states.
fn random_model(seed: u64, threads: u16, txns: u16) -> Arc<GuidedModel> {
    let mut rng = Rng(seed | 1);
    let mut runs = Vec::new();
    for _ in 0..4 {
        let mut run = Vec::new();
        for _ in 0..200 {
            let committer = p(
                rng.below(txns as u64) as u16,
                rng.below(threads as u64) as u16,
            );
            let mut aborts = Vec::new();
            for th in 0..threads {
                if rng.below(4) == 0 {
                    aborts.push(p(rng.below(txns as u64) as u16, th));
                }
            }
            aborts.sort();
            aborts.dedup();
            run.push(StateKey::new(aborts, committer));
        }
        runs.push(run);
    }
    let tsa = Tsa::from_runs(&runs);
    Arc::new(GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(2.0)))
}

/// Drive `threads` workers through a randomized schedule of
/// gate/abort/commit calls against one guided hook, returning the
/// per-thread (gate calls, commits, aborts) they actually made.
fn run_schedule(hook: &Arc<GuidedHook>, seed: u64, threads: u16, txns: u16) -> Vec<(u64, u64, u64)> {
    let mut per_thread = vec![(0u64, 0u64, 0u64); threads as usize];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for th in 0..threads {
            let hook = Arc::clone(hook);
            handles.push(s.spawn(move || {
                let mut rng = Rng(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(th as u64 + 1)));
                let (mut gates, mut commits, mut aborts) = (0u64, 0u64, 0u64);
                for _ in 0..300 {
                    let who = p(rng.below(txns as u64) as u16, th);
                    hook.gate(who);
                    gates += 1;
                    // Each attempt aborts a geometric number of times
                    // before committing, like a real retry loop.
                    while rng.below(3) == 0 {
                        hook.gate(who);
                        gates += 1;
                        hook.on_abort(who, AbortCause::Validation);
                        aborts += 1;
                    }
                    hook.on_commit(who);
                    commits += 1;
                }
                (th, gates, commits, aborts)
            }));
        }
        for h in handles {
            let (th, g, c, a) = h.join().unwrap();
            per_thread[th as usize] = (g, c, a);
        }
    });
    per_thread
}

#[test]
fn gate_outcomes_partition_calls_over_randomized_schedules() {
    for seed in [3u64, 77, 2024] {
        let threads = 4u16;
        let model = random_model(seed, threads, 6);
        let cfg = GuidanceConfig {
            k_retries: 2,
            wait_spins: 8,
            ..GuidanceConfig::default()
        };
        let tel = Arc::new(Telemetry::counters_only());
        let hook = Arc::new(GuidedHook::with_telemetry(model, cfg, Some(tel.clone())));
        let per_thread = run_schedule(&hook, seed, threads, 6);

        let total_gates: u64 = per_thread.iter().map(|&(g, _, _)| g).sum();
        let total_commits: u64 = per_thread.iter().map(|&(_, c, _)| c).sum();
        let total_aborts: u64 = per_thread.iter().map(|&(_, _, a)| a).sum();

        // The three outcomes partition the gate entries.
        let stats = hook.stats();
        assert_eq!(
            stats.passed + stats.waited + stats.released,
            total_gates,
            "outcome partition broken (seed {seed}): {stats:?}"
        );

        // Telemetry's aggregate agrees with GateStats, counter by counter.
        let snap = tel.snapshot();
        assert_eq!(snap.gate_passed, stats.passed, "seed {seed}");
        assert_eq!(snap.gate_waited, stats.waited, "seed {seed}");
        assert_eq!(snap.gate_released, stats.released, "seed {seed}");
        assert_eq!(snap.gate_total(), total_gates, "seed {seed}");

        // And each thread's cell counts exactly its own calls (thread ids
        // here are below TELEMETRY_SHARDS, so cells don't alias).
        assert!(threads as usize <= TELEMETRY_SHARDS);
        for (th, &(gates, _, _)) in per_thread.iter().enumerate() {
            let cell = snap
                .per_thread
                .iter()
                .find(|c| c.cell == th)
                .unwrap_or_else(|| panic!("thread {th} missing from snapshot (seed {seed})"));
            assert_eq!(cell.gate_total(), gates, "thread {th}, seed {seed}");
        }

        // Commit/abort accounting: the hook does not count these (the STM
        // runtimes do), so the snapshot must show gate outcomes only.
        assert_eq!(snap.commits, 0);
        assert_eq!(snap.aborts_total(), 0);
        let _ = (total_commits, total_aborts);
    }
}

#[test]
fn gate_invariants_hold_with_runtime_attached() {
    // Same invariant, but through a real TL2 runtime so commits/aborts
    // are counted too: gate calls == attempts == commits + aborts.
    use std::sync::atomic::AtomicU64;

    let threads = 3u16;
    let model = random_model(11, threads, 4);
    let cfg = GuidanceConfig {
        k_retries: 2,
        wait_spins: 8,
        ..GuidanceConfig::default()
    };
    let tel = Arc::new(Telemetry::counters_only());
    let hook = Arc::new(GuidedHook::with_telemetry(model, cfg, Some(tel.clone())));

    // Drive the hook the way a runtime does: gate precedes every attempt,
    // and every attempt ends in exactly one on_abort or on_commit.
    let attempts = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for th in 0..threads {
            let hook = Arc::clone(&hook);
            let attempts = Arc::clone(&attempts);
            let tel = Arc::clone(&tel);
            s.spawn(move || {
                let mut rng = Rng(0xdead_beef ^ th as u64);
                for i in 0..200u16 {
                    let who = p(i % 4, th);
                    loop {
                        hook.gate(who);
                        attempts.fetch_add(1, Ordering::Relaxed);
                        if rng.below(4) == 0 {
                            hook.on_abort(who, AbortCause::ReadVersion);
                            tel.record_abort(who, AbortCause::ReadVersion);
                        } else {
                            hook.on_commit(who);
                            tel.record_commit(who, 100);
                            break;
                        }
                    }
                }
            });
        }
    });

    let snap = tel.snapshot();
    let stats = hook.stats();
    let total = attempts.load(Ordering::Relaxed);
    assert_eq!(stats.passed + stats.waited + stats.released, total);
    assert_eq!(snap.gate_total(), total);
    assert_eq!(snap.commits + snap.aborts_total(), total);
    assert_eq!(snap.commits, (threads as u64) * 200);
}
