//! Quest layouts: time-varying player attractors.
//!
//! A quest is a point of interest players walk toward; placing quests
//! close together packs players into few spatial cells and raises
//! transactional contention. The paper trains its model on `4worst_case`
//! and `4moving` and tests on `4quadrants` and `4center_spread6`.

/// The four quest layouts from the paper's SynQuake experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuestLayout {
    /// All four quests on the map center: maximum player pile-up
    /// (training input).
    WorstCase4,
    /// Four quests orbiting the center (training input).
    Moving4,
    /// One quest per map quadrant (test input).
    Quadrants4,
    /// Quests start at the center and spread outward in a 6-phase cycle
    /// (test input).
    CenterSpread6,
}

impl QuestLayout {
    /// The paper's name for the layout.
    pub fn name(&self) -> &'static str {
        match self {
            QuestLayout::WorstCase4 => "4worst_case",
            QuestLayout::Moving4 => "4moving",
            QuestLayout::Quadrants4 => "4quadrants",
            QuestLayout::CenterSpread6 => "4center_spread6",
        }
    }

    /// The layout with the given paper name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "4worst_case" => Some(QuestLayout::WorstCase4),
            "4moving" => Some(QuestLayout::Moving4),
            "4quadrants" => Some(QuestLayout::Quadrants4),
            "4center_spread6" => Some(QuestLayout::CenterSpread6),
            _ => None,
        }
    }

    /// Position of quest `q` (0..4) at frame `frame` on a `size`×`size`
    /// map.
    pub fn position(&self, q: usize, frame: u64, size: u32) -> (u32, u32) {
        let s = size as f64;
        let center = (s / 2.0, s / 2.0);
        let quadrant = |q: usize| {
            let fx = if q.is_multiple_of(2) { 0.25 } else { 0.75 };
            let fy = if q / 2 == 0 { 0.25 } else { 0.75 };
            (s * fx, s * fy)
        };
        let (x, y) = match self {
            QuestLayout::WorstCase4 => center,
            QuestLayout::Moving4 => {
                // Orbit the center with radius s/4, one quarter-turn phase
                // offset per quest.
                let angle = (frame as f64) / 40.0 + (q as f64) * std::f64::consts::FRAC_PI_2;
                (
                    center.0 + s / 4.0 * angle.cos(),
                    center.1 + s / 4.0 * angle.sin(),
                )
            }
            QuestLayout::Quadrants4 => quadrant(q),
            QuestLayout::CenterSpread6 => {
                // 6-phase cycle: phase 0 = all at center, phase 5 = fully
                // spread into quadrants, then snap back.
                let phase = (frame / 6) % 6;
                let t = phase as f64 / 5.0;
                let (qx, qy) = quadrant(q);
                (
                    center.0 + (qx - center.0) * t,
                    center.1 + (qy - center.1) * t,
                )
            }
        };
        (
            (x.clamp(0.0, s - 1.0)) as u32,
            (y.clamp(0.0, s - 1.0)) as u32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZE: u32 = 1024;

    #[test]
    fn names_round_trip() {
        for l in [
            QuestLayout::WorstCase4,
            QuestLayout::Moving4,
            QuestLayout::Quadrants4,
            QuestLayout::CenterSpread6,
        ] {
            assert_eq!(QuestLayout::by_name(l.name()), Some(l));
        }
        assert_eq!(QuestLayout::by_name("nope"), None);
    }

    #[test]
    fn worst_case_stacks_all_quests_at_center() {
        for q in 0..4 {
            assert_eq!(
                QuestLayout::WorstCase4.position(q, 7, SIZE),
                (SIZE / 2, SIZE / 2)
            );
        }
    }

    #[test]
    fn quadrants_are_distinct_and_static() {
        let ps: Vec<(u32, u32)> = (0..4)
            .map(|q| QuestLayout::Quadrants4.position(q, 0, SIZE))
            .collect();
        let distinct: std::collections::HashSet<_> = ps.iter().collect();
        assert_eq!(distinct.len(), 4);
        for (q, &p) in ps.iter().enumerate() {
            assert_eq!(p, QuestLayout::Quadrants4.position(q, 999, SIZE));
        }
    }

    #[test]
    fn moving_quests_move_over_time() {
        let a = QuestLayout::Moving4.position(0, 0, SIZE);
        let b = QuestLayout::Moving4.position(0, 100, SIZE);
        assert_ne!(a, b);
    }

    #[test]
    fn center_spread_starts_at_center_and_spreads() {
        for q in 0..4 {
            assert_eq!(
                QuestLayout::CenterSpread6.position(q, 0, SIZE),
                (SIZE / 2, SIZE / 2)
            );
        }
        // Phase 5 (frames 30..35): fully spread to quadrants.
        let spread: std::collections::HashSet<_> = (0..4)
            .map(|q| QuestLayout::CenterSpread6.position(q, 30, SIZE))
            .collect();
        assert_eq!(spread.len(), 4);
    }

    #[test]
    fn positions_stay_on_the_map() {
        for layout in [
            QuestLayout::WorstCase4,
            QuestLayout::Moving4,
            QuestLayout::Quadrants4,
            QuestLayout::CenterSpread6,
        ] {
            for frame in (0..200).step_by(13) {
                for q in 0..4 {
                    let (x, y) = layout.position(q, frame, SIZE);
                    assert!(x < SIZE && y < SIZE);
                }
            }
        }
    }
}
