//! The game world: players and the spatial cell grid.

use gstm_libtm::{LtResult, LtTxn, TObject};

/// One player's mutable state.
#[derive(Clone, Debug)]
pub struct Player {
    /// Map position.
    pub x: u32,
    /// Map position.
    pub y: u32,
    /// Hit points; respawns at 100 when reduced to 0.
    pub hp: i32,
    /// Frags scored.
    pub score: u32,
    /// Which quest (0..4) this player is drawn to.
    pub quest: usize,
}

/// The shared world: a `size`×`size` map partitioned into square cells of
/// `cell_size`, each holding the ids of the players inside it, plus one
/// object per player. Fine-grained, object-level consistency — SynQuake's
/// design point versus a lock-based server.
pub struct World {
    /// Map edge length.
    pub size: u32,
    /// Cell edge length.
    pub cell_size: u32,
    cells_per_row: u32,
    /// Cell occupancy lists.
    pub cells: Vec<TObject<Vec<u32>>>,
    /// Items lying in each cell (health packs / ammo in the original;
    /// here an opaque item id).
    pub items: Vec<TObject<Vec<u32>>>,
    /// Player objects.
    pub players: Vec<TObject<Player>>,
}

impl World {
    /// Create a world and place `players` deterministically (spread on a
    /// diagonal lattice), assigning quests round-robin.
    pub fn new(size: u32, cell_size: u32, players: u32, seed: u64) -> Self {
        let cells_per_row = size.div_ceil(cell_size);
        let n_cells = (cells_per_row * cells_per_row) as usize;
        let mut world = World {
            size,
            cell_size,
            cells_per_row,
            cells: (0..n_cells).map(|_| TObject::new(Vec::new())).collect(),
            items: (0..n_cells).map(|_| TObject::new(Vec::new())).collect(),
            players: Vec::new(),
        };
        for id in 0..players {
            let r = mix64(seed ^ id as u64);
            let x = (r % size as u64) as u32;
            let y = (mix64(r) % size as u64) as u32;
            let p = Player {
                x,
                y,
                hp: 100,
                score: 0,
                quest: (id % 4) as usize,
            };
            // Initial placement is setup-time: write the committed state
            // directly.
            let cell = world.cell_index(x, y);
            let mut occupants = world.cells[cell].load_quiesced();
            occupants.push(id);
            world.cells[cell] = TObject::new(occupants);
            world.players.push(TObject::new(p));
        }
        world
    }

    /// The cell containing `(x, y)`.
    #[inline]
    pub fn cell_index(&self, x: u32, y: u32) -> usize {
        let cx = (x / self.cell_size).min(self.cells_per_row - 1);
        let cy = (y / self.cell_size).min(self.cells_per_row - 1);
        (cy * self.cells_per_row + cx) as usize
    }

    /// Number of cells per row.
    pub fn cells_per_row(&self) -> u32 {
        self.cells_per_row
    }

    /// Transactionally move player `id` to `(nx, ny)`, updating the cell
    /// occupancy lists.
    pub fn move_player(
        &self,
        tx: &mut LtTxn,
        id: u32,
        nx: u32,
        ny: u32,
    ) -> LtResult<()> {
        let pobj = &self.players[id as usize];
        let mut p = tx.read(pobj)?;
        let old_cell = self.cell_index(p.x, p.y);
        let new_cell = self.cell_index(nx, ny);
        if old_cell != new_cell {
            let mut old = tx.read(&self.cells[old_cell])?;
            old.retain(|&o| o != id);
            tx.write(&self.cells[old_cell], old)?;
            let mut new = tx.read(&self.cells[new_cell])?;
            if !new.contains(&id) {
                new.push(id);
            }
            tx.write(&self.cells[new_cell], new)?;
        }
        p.x = nx;
        p.y = ny;
        tx.write(pobj, p)?;
        Ok(())
    }

    /// Transactionally attack another player in `id`'s cell (chosen by
    /// `pick`), dealing `damage`. Returns the victim id if a hit landed;
    /// a kill respawns the victim and scores the attacker.
    pub fn attack(
        &self,
        tx: &mut LtTxn,
        id: u32,
        damage: i32,
        pick: u64,
    ) -> LtResult<Option<u32>> {
        let pobj = &self.players[id as usize];
        let p = tx.read(pobj)?;
        let cell = self.cell_index(p.x, p.y);
        let occupants = tx.read(&self.cells[cell])?;
        let targets: Vec<u32> = occupants.into_iter().filter(|&o| o != id).collect();
        if targets.is_empty() {
            return Ok(None);
        }
        let victim = targets[(pick % targets.len() as u64) as usize];
        let vobj = &self.players[victim as usize];
        let mut v = tx.read(vobj)?;
        v.hp -= damage;
        let killed = v.hp <= 0;
        if killed {
            v.hp = 100;
        }
        tx.write(vobj, v)?;
        if killed {
            let mut me = tx.read(pobj)?;
            me.score += 1;
            tx.write(pobj, me)?;
        }
        Ok(Some(victim))
    }

    /// Scatter `count` items across the map. Setup-time only (takes
    /// `&mut self`: the world is not yet shared with worker threads).
    pub fn spawn_items(&mut self, count: u32, seed: u64) {
        for item in 0..count {
            let r = mix64(seed ^ 0x17e5 ^ item as u64);
            let x = (r % self.size as u64) as u32;
            let y = (mix64(r) % self.size as u64) as u32;
            let cell = self.cell_index(x, y);
            let mut items = self.items[cell].load_quiesced();
            items.push(item);
            self.items[cell] = TObject::new(items);
        }
    }

    /// Transactionally pick up one item from `id`'s cell, if any,
    /// restoring up to 10 hp (the original's "eat/pickup" action).
    /// Returns the item id taken.
    pub fn pickup(&self, tx: &mut LtTxn, id: u32) -> LtResult<Option<u32>> {
        let pobj = &self.players[id as usize];
        let mut p = tx.read(pobj)?;
        let cell = self.cell_index(p.x, p.y);
        let mut items = tx.read(&self.items[cell])?;
        match items.pop() {
            Some(item) => {
                tx.write(&self.items[cell], items)?;
                p.hp = (p.hp + 10).min(100);
                tx.write(pobj, p)?;
                Ok(Some(item))
            }
            None => Ok(None),
        }
    }

    /// Total items remaining on the map (quiesced).
    pub fn items_remaining(&self) -> usize {
        self.items.iter().map(|c| c.load_quiesced().len()).sum()
    }

    /// Quiesced audit: every player appears in exactly the cell its
    /// position maps to. Returns the number of inconsistencies.
    pub fn audit(&self) -> usize {
        let mut bad = 0;
        let occupancy: Vec<Vec<u32>> = self.cells.iter().map(|c| c.load_quiesced()).collect();
        for (id, pobj) in self.players.iter().enumerate() {
            let p = pobj.load_quiesced();
            let cell = self.cell_index(p.x, p.y);
            let here = occupancy[cell].iter().filter(|&&o| o == id as u32).count();
            if here != 1 {
                bad += 1;
                continue;
            }
            let elsewhere: usize = occupancy
                .iter()
                .enumerate()
                .filter(|&(c, _)| c != cell)
                .map(|(_, occ)| occ.iter().filter(|&&o| o == id as u32).count())
                .sum();
            if elsewhere != 0 {
                bad += 1;
            }
        }
        bad
    }
}

#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_core::{ThreadId, TxnId};
    use gstm_libtm::{LibTm, LibTmConfig};

    #[test]
    fn construction_places_every_player_once() {
        let w = World::new(256, 64, 50, 9);
        assert_eq!(w.players.len(), 50);
        assert_eq!(w.audit(), 0);
        let total: usize = w.cells.iter().map(|c| c.load_quiesced().len()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn cell_index_covers_the_map() {
        let w = World::new(256, 64, 0, 0);
        assert_eq!(w.cells_per_row(), 4);
        assert_eq!(w.cell_index(0, 0), 0);
        assert_eq!(w.cell_index(255, 255), 15);
        assert_eq!(w.cell_index(64, 0), 1);
        assert_eq!(w.cell_index(0, 64), 4);
    }

    #[test]
    fn move_updates_cells_consistently() {
        let w = World::new(256, 64, 4, 9);
        let tm = LibTm::new(LibTmConfig::default());
        let mut ctx = tm.register_as(ThreadId(0));
        ctx.atomically(TxnId(0), |tx| w.move_player(tx, 0, 255, 255));
        assert_eq!(w.audit(), 0);
        let p = w.players[0].load_quiesced();
        assert_eq!((p.x, p.y), (255, 255));
    }

    #[test]
    fn attack_hits_a_cell_mate_and_scores_kills() {
        let w = World::new(256, 64, 2, 9);
        let tm = LibTm::new(LibTmConfig::default());
        let mut ctx = tm.register_as(ThreadId(0));
        // Put both players in the same cell.
        ctx.atomically(TxnId(0), |tx| w.move_player(tx, 0, 10, 10));
        ctx.atomically(TxnId(0), |tx| w.move_player(tx, 1, 12, 12));
        // 100 hp / 30 damage -> fourth hit kills.
        for _ in 0..3 {
            let hit = ctx.atomically(TxnId(1), |tx| w.attack(tx, 0, 30, 0));
            assert_eq!(hit, Some(1));
        }
        let hit = ctx.atomically(TxnId(1), |tx| w.attack(tx, 0, 30, 0));
        assert_eq!(hit, Some(1));
        let victim = w.players[1].load_quiesced();
        assert_eq!(victim.hp, 100, "victim respawned");
        let attacker = w.players[0].load_quiesced();
        assert_eq!(attacker.score, 1);
    }

    #[test]
    fn items_spawn_and_get_picked_up() {
        let mut w = World::new(256, 64, 1, 9);
        w.spawn_items(20, 5);
        assert_eq!(w.items_remaining(), 20);
        let tm = LibTm::new(LibTmConfig::default());
        let mut ctx = tm.register_as(ThreadId(0));
        // Damage the player, then walk it over every cell picking up.
        ctx.atomically(TxnId(1), |tx| {
            let mut p = tx.read(&w.players[0])?;
            p.hp = 50;
            tx.write(&w.players[0], p)
        });
        let mut picked = 0;
        for cy in 0..4u32 {
            for cx in 0..4u32 {
                ctx.atomically(TxnId(0), |tx| {
                    w.move_player(tx, 0, cx * 64 + 5, cy * 64 + 5)
                });
                while let Some(_item) =
                    ctx.atomically(TxnId(2), |tx| w.pickup(tx, 0))
                {
                    picked += 1;
                }
            }
        }
        assert_eq!(picked, 20, "every item reachable");
        assert_eq!(w.items_remaining(), 0);
        let p = w.players[0].load_quiesced();
        assert_eq!(p.hp, 100, "hp restored and capped");
        assert_eq!(w.audit(), 0);
    }

    #[test]
    fn pickup_in_empty_cell_returns_none() {
        let mut w = World::new(256, 64, 1, 9);
        w.spawn_items(0, 5);
        let tm = LibTm::new(LibTmConfig::default());
        let mut ctx = tm.register_as(ThreadId(0));
        let got = ctx.atomically(TxnId(2), |tx| w.pickup(tx, 0));
        assert_eq!(got, None);
    }

    #[test]
    fn attack_alone_in_cell_misses() {
        let w = World::new(256, 64, 2, 9);
        let tm = LibTm::new(LibTmConfig::default());
        let mut ctx = tm.register_as(ThreadId(0));
        ctx.atomically(TxnId(0), |tx| w.move_player(tx, 0, 10, 10));
        ctx.atomically(TxnId(0), |tx| w.move_player(tx, 1, 200, 200));
        let hit = ctx.atomically(TxnId(1), |tx| w.attack(tx, 0, 30, 0));
        assert_eq!(hit, None);
    }
}
