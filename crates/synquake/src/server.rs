//! The frame-driven game server.
//!
//! Client requests arrive in frames; a pool of worker threads processes
//! the frame's player actions inside barriers (SynQuake's server model —
//! "multiple client frames are handled by threads and executed within
//! barriers", so per-frame processing time, not per-thread time, is the
//! variance metric).

use crate::quest::QuestLayout;
use crate::world::World;
use gstm_core::{ThreadId, ThreadStats, TxnId};
use gstm_libtm::LibTm;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Txn site: move a player toward its quest.
const TXN_MOVE: TxnId = TxnId(0);
/// Txn site: attack a co-located player.
const TXN_ATTACK: TxnId = TxnId(1);
/// Txn site: pick up an item from the player's cell.
const TXN_PICKUP: TxnId = TxnId(2);

/// Parameters of one game run.
#[derive(Clone, Copy, Debug)]
pub struct GameConfig {
    /// Worker threads processing each frame.
    pub threads: u16,
    /// Number of players (the paper uses 1000).
    pub players: u32,
    /// Frames to process (paper: 1000 training / 10000 testing; scaled
    /// presets live in the harness).
    pub frames: u64,
    /// Map edge length (paper: 1024).
    pub map_size: u32,
    /// Spatial cell edge length.
    pub cell_size: u32,
    /// Quest layout driving player movement.
    pub quest: QuestLayout,
    /// Input seed.
    pub seed: u64,
    /// Player walk speed in map units per frame.
    pub speed: u32,
    /// Percent of actions that are attacks.
    pub attack_pct: u64,
    /// Percent of actions that are item pickups (the rest are moves).
    pub pickup_pct: u64,
    /// Items scattered on the map at start (one per this many players).
    pub items: u32,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            threads: 8,
            players: 256,
            frames: 60,
            map_size: 1024,
            cell_size: 64,
            quest: QuestLayout::Quadrants4,
            seed: 0x9a3e,
            speed: 24,
            attack_pct: 30,
            pickup_pct: 10,
            items: 64,
        }
    }
}

/// What a game run produced.
#[derive(Clone, Debug, Default)]
pub struct FrameResult {
    /// Processing time of each frame, in seconds.
    pub frame_secs: Vec<f64>,
    /// Per-thread STM statistics.
    pub per_thread_stats: Vec<ThreadStats>,
    /// World-consistency violations found by the post-run audit (0 =
    /// clean).
    pub audit_failures: usize,
    /// Total frags scored (workload checksum).
    pub total_score: u64,
    /// Items picked up during the run.
    pub items_picked: u64,
}

impl FrameResult {
    /// Aggregate stats across threads.
    pub fn merged_stats(&self) -> ThreadStats {
        let mut t = ThreadStats::new();
        for s in &self.per_thread_stats {
            t.merge(s);
        }
        t
    }
}

#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Step `v` toward `target` by at most `speed`.
fn step_toward(v: u32, target: u32, speed: u32) -> u32 {
    if v < target {
        v + speed.min(target - v)
    } else {
        v - speed.min(v - target)
    }
}

/// Run a game on the given LibTM instance and return per-frame timings
/// plus STM statistics.
pub fn run_game(tm: &Arc<LibTm>, cfg: &GameConfig) -> FrameResult {
    let mut world = World::new(cfg.map_size, cfg.cell_size, cfg.players, cfg.seed);
    world.spawn_items(cfg.items, cfg.seed ^ 0x17e5);
    let items_spawned = world.items_remaining();
    let world = Arc::new(world);
    let n = cfg.threads.max(1) as usize;
    let barrier = Arc::new(Barrier::new(n));
    let frame_secs = Arc::new(parking_lot_free_vec(cfg.frames as usize));

    let per_thread_stats: Vec<ThreadStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n as u16)
            .map(|t| {
                let tm = Arc::clone(tm);
                let world = Arc::clone(&world);
                let barrier = Arc::clone(&barrier);
                let frame_secs = Arc::clone(&frame_secs);
                let cfg = *cfg;
                s.spawn(move || {
                    let mut ctx = tm.register_as(ThreadId(t));
                    let chunk = (cfg.players as usize).div_ceil(n);
                    let lo = (t as usize * chunk).min(cfg.players as usize);
                    let hi = ((t as usize + 1) * chunk).min(cfg.players as usize);
                    for frame in 0..cfg.frames {
                        barrier.wait();
                        let t0 = Instant::now();
                        for id in lo as u32..hi as u32 {
                            let r = mix64(cfg.seed ^ (frame << 24) ^ id as u64);
                            if r % 100 < cfg.attack_pct {
                                ctx.atomically(TXN_ATTACK, |tx| {
                                    world.attack(tx, id, 25, mix64(r))
                                });
                            } else if r % 100 < cfg.attack_pct + cfg.pickup_pct {
                                ctx.atomically(TXN_PICKUP, |tx| world.pickup(tx, id));
                            } else {
                                let p = world.players[id as usize].load_quiesced();
                                let (qx, qy) =
                                    cfg.quest.position(p.quest, frame, cfg.map_size);
                                // Jitter keeps the crowd from collapsing to
                                // one pixel.
                                let jx = (mix64(r >> 3) % 40) as u32;
                                let jy = (mix64(r >> 5) % 40) as u32;
                                let nx = step_toward(
                                    p.x,
                                    (qx + jx).min(cfg.map_size - 1),
                                    cfg.speed,
                                );
                                let ny = step_toward(
                                    p.y,
                                    (qy + jy).min(cfg.map_size - 1),
                                    cfg.speed,
                                );
                                ctx.atomically(TXN_MOVE, |tx| {
                                    world.move_player(tx, id, nx, ny)
                                });
                            }
                        }
                        barrier.wait();
                        // Thread 0 owns the frame clock: the frame is done
                        // when every thread has passed the second barrier.
                        if t == 0 {
                            frame_secs.set(frame as usize, t0.elapsed().as_secs_f64());
                        }
                    }
                    ctx.take_stats()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total_score: u64 = world
        .players
        .iter()
        .map(|p| p.load_quiesced().score as u64)
        .sum();
    FrameResult {
        frame_secs: frame_secs.take(),
        per_thread_stats,
        audit_failures: world.audit(),
        total_score,
        items_picked: (items_spawned - world.items_remaining()) as u64,
    }
}

/// A fixed-size slot vector writable from one thread per slot without
/// locking (thread 0 writes each frame slot exactly once).
struct SlotVec(Vec<std::sync::atomic::AtomicU64>);

fn parking_lot_free_vec(n: usize) -> SlotVec {
    SlotVec((0..n).map(|_| std::sync::atomic::AtomicU64::new(0)).collect())
}

impl SlotVec {
    fn set(&self, i: usize, secs: f64) {
        self.0[i].store(secs.to_bits(), std::sync::atomic::Ordering::Relaxed);
    }

    fn take(&self) -> Vec<f64> {
        self.0
            .iter()
            .map(|a| f64::from_bits(a.load(std::sync::atomic::Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstm_libtm::LibTmConfig;

    fn quick_cfg(threads: u16, quest: QuestLayout) -> GameConfig {
        GameConfig {
            threads,
            players: 48,
            frames: 12,
            map_size: 256,
            cell_size: 64,
            quest,
            seed: 5,
            speed: 24,
            attack_pct: 30,
            pickup_pct: 10,
            items: 16,
        }
    }

    #[test]
    fn game_runs_and_world_stays_consistent() {
        let tm = LibTm::new(LibTmConfig::default());
        let r = run_game(&tm, &quick_cfg(2, QuestLayout::Quadrants4));
        assert_eq!(r.frame_secs.len(), 12);
        assert!(r.frame_secs.iter().all(|&s| s > 0.0));
        assert_eq!(r.audit_failures, 0, "cell bookkeeping is consistent");
    }

    #[test]
    fn worst_case_layout_generates_contention() {
        let tm = LibTm::new(LibTmConfig {
            yield_prob_log2: Some(2),
            ..LibTmConfig::default()
        });
        let mut cfg = quick_cfg(4, QuestLayout::WorstCase4);
        cfg.frames = 30;
        let r = run_game(&tm, &cfg);
        assert_eq!(r.audit_failures, 0);
        let stats = r.merged_stats();
        assert!(stats.commits > 0);
        // With everyone herded onto one spot, some conflicts must occur.
        assert!(
            stats.aborts > 0,
            "expected contention under 4worst_case (commits {})",
            stats.commits
        );
    }

    #[test]
    fn players_converge_on_their_quads() {
        let tm = LibTm::new(LibTmConfig::default());
        let mut cfg = quick_cfg(2, QuestLayout::Quadrants4);
        cfg.frames = 40;
        cfg.attack_pct = 0; // pure movement
        let world = {
            // Re-run inline so we can inspect final positions: run_game
            // hides the world, so rebuild the same world and check the
            // total score path instead.
            run_game(&tm, &cfg)
        };
        // Pure-movement game: nobody scores.
        assert_eq!(world.total_score, 0);
    }
}
