//! # gstm-synquake — a SynQuake-style multiplayer game server workload
//!
//! SynQuake (Lupei et al., PPoPP'10) is a 2-D re-implementation of the
//! Quake 3 server used to study transactional parallelization of game
//! logic; the paper uses it (on LibTM) as its real-world workload. The
//! original is closed source; this crate rebuilds the documented setup:
//!
//! * a 1024×1024 world partitioned into spatial cells,
//! * up to 1000 players whose movement is *attracted by quests* — named
//!   hot-spots in the map that concentrate players and thus contention,
//! * the four quest layouts the paper names: `4worst_case` and `4moving`
//!   for training, `4quadrants` and `4center_spread6` for testing,
//! * server frames processed by a pool of threads inside barriers, with
//!   every player action (move between cells, attack a co-located player)
//!   an object-granularity LibTM transaction,
//! * per-frame processing-time measurement — the quantity whose variance
//!   Figures 11/12 of the paper report.
//!
//! Txn sites: 0 = move (update player + cell membership), 1 = attack
//! (hit a player sharing the cell).
//!
//! ## Example
//!
//! ```
//! use gstm_synquake::{run_game, GameConfig, QuestLayout};
//! use gstm_libtm::{LibTm, LibTmConfig};
//!
//! let tm = LibTm::new(LibTmConfig::default());
//! let cfg = GameConfig {
//!     threads: 2,
//!     players: 24,
//!     frames: 5,
//!     quest: QuestLayout::Quadrants4,
//!     ..GameConfig::default()
//! };
//! let result = run_game(&tm, &cfg);
//! assert_eq!(result.frame_secs.len(), 5);
//! assert_eq!(result.audit_failures, 0); // world stayed consistent
//! ```

pub mod quest;
pub mod server;
pub mod world;

pub use quest::QuestLayout;
pub use server::{run_game, FrameResult, GameConfig};
pub use world::{Player, World};
