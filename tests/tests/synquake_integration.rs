//! SynQuake integration: the game stays consistent under every LibTM
//! configuration and under guided execution.

use gstm_core::prelude::*;
use gstm_core::GuidanceConfig;
use gstm_libtm::{DetectionMode, LibTm, LibTmConfig, Resolution};
use gstm_synquake::{run_game, GameConfig, QuestLayout};
use std::sync::Arc;

fn quick_cfg(quest: QuestLayout) -> GameConfig {
    GameConfig {
        threads: 3,
        players: 48,
        frames: 15,
        map_size: 256,
        cell_size: 64,
        quest,
        seed: 77,
        speed: 24,
        attack_pct: 30,
        pickup_pct: 10,
        items: 24,
    }
}

#[test]
fn world_is_consistent_under_every_libtm_configuration() {
    for detection in [
        DetectionMode::FullyPessimistic,
        DetectionMode::PessimisticRead,
        DetectionMode::PessimisticWrite,
        DetectionMode::FullyOptimistic,
    ] {
        for resolution in [Resolution::WaitForReaders, Resolution::AbortReaders] {
            let tm = LibTm::new(LibTmConfig {
                detection,
                resolution,
                yield_prob_log2: Some(3),
                ..LibTmConfig::default()
            });
            let r = run_game(&tm, &quick_cfg(QuestLayout::WorstCase4));
            assert_eq!(
                r.audit_failures, 0,
                "corrupt world under {detection:?}/{resolution:?}"
            );
            assert_eq!(r.frame_secs.len(), 15);
        }
    }
}

#[test]
fn guided_game_preserves_world_consistency() {
    let guidance = GuidanceConfig::default();
    let tm_cfg = LibTmConfig {
        yield_prob_log2: Some(3),
        ..LibTmConfig::default()
    };
    // Train on the paper's training quests.
    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for quest in [QuestLayout::WorstCase4, QuestLayout::Moving4] {
        let tm = LibTm::with_hook(rec.clone(), tm_cfg);
        run_game(&tm, &quick_cfg(quest));
        runs.push(rec.take_run());
    }
    assert!(runs.iter().any(|r| !r.is_empty()), "training recorded states");
    let model = Arc::new(GuidedModel::build(Tsa::from_runs(&runs), &guidance));

    // Guided test runs on the paper's test quests.
    for quest in [QuestLayout::Quadrants4, QuestLayout::CenterSpread6] {
        let hook = Arc::new(GuidedHook::new(model.clone(), guidance));
        let tm = LibTm::with_hook(hook, tm_cfg);
        let r = run_game(&tm, &quick_cfg(quest));
        assert_eq!(r.audit_failures, 0, "guided run corrupted {}", quest.name());
    }
}

#[test]
fn contention_ranks_worst_case_above_quadrants() {
    // The quest layouts exist to modulate contention: stacking all four
    // quests on one spot must conflict more than spreading them out.
    // Scheduling is stochastic, so aggregate over several runs of a
    // larger game before comparing.
    let run = |quest| {
        let mut aborts = 0u64;
        let mut commits = 0u64;
        for seed in 0..3u64 {
            let tm = LibTm::new(LibTmConfig {
                yield_prob_log2: Some(2),
                ..LibTmConfig::default()
            });
            let mut cfg = quick_cfg(quest);
            cfg.players = 96;
            cfg.frames = 50;
            cfg.seed = 1000 + seed;
            let r = run_game(&tm, &cfg);
            let s = r.merged_stats();
            aborts += s.aborts;
            commits += s.commits;
        }
        aborts as f64 / commits.max(1) as f64
    };
    let worst_ratio = run(QuestLayout::WorstCase4);
    let quad_ratio = run(QuestLayout::Quadrants4);
    assert!(
        worst_ratio > quad_ratio,
        "4worst_case ({worst_ratio:.4}) should out-conflict 4quadrants ({quad_ratio:.4})"
    );
}
