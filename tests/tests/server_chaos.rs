//! Seeded socket-chaos campaigns against the SynQuake server engine.
//!
//! The contract under test is the PR's acceptance bar: a chaos campaign
//! (accept stalls, partial I/O, abrupt disconnects, malformed frames,
//! slow-loris stalls) must (a) never panic, (b) never lose a committed
//! world-state update (every executed action is exactly one STM commit
//! and the world audit stays clean), (c) replay bit-identically — the
//! same `--chaos` seed yields the same fault log and the same
//! degradation-ladder trajectory — and (d) drive the guidance breaker
//! through a forced-open trip and back to closed via its own probe
//! path.

use gstm_core::faultinject::{FaultPlan, FaultRecord};
use gstm_core::prelude::*;
use gstm_core::rng::SplitMix64;
use gstm_libtm::{LibTm, LibTmConfig};
use gstm_server::admission::{AdmissionConfig, Rung};
use gstm_server::engine::{Engine, EngineConfig, Event};
use gstm_server::proto::{ActionOp, Frame};
use gstm_server::stats::ServerStats;
use std::sync::Arc;

fn small_admission() -> AdmissionConfig {
    AdmissionConfig {
        tick_budget: 200,
        action_cost: 10,
        base_cost: 20,
        max_sessions: 8,
        escalate_after: 2,
        deescalate_after: 3,
        low_water_pct: 60,
    }
}

/// One deterministic campaign: scripted traffic from `seed` against an
/// engine armed with the `socket` fault plan at the same seed. Returns
/// everything the replay comparison needs.
struct CampaignOutcome {
    fault_log: Vec<FaultRecord>,
    ladder: Vec<u8>,
    commits: u64,
    executed: u64,
    audit: usize,
}

fn run_campaign(seed: u64, ticks: usize) -> CampaignOutcome {
    let faults = Arc::new(
        FaultPlan::parse_spec(&format!("{seed}:socket"))
            .expect("socket plan parses")
            .with_log(),
    );
    let stats = Arc::new(ServerStats::new());
    let tm = LibTm::new(LibTmConfig::default());
    let cfg = EngineConfig {
        players: 8,
        deterministic: true,
        admission: small_admission(),
        ..EngineConfig::default()
    };
    let mut e = Engine::new(cfg, tm, None, Some(faults.clone()), stats.clone());

    let mut rng = SplitMix64::new(seed ^ 0x5c21_97a1);
    for conn in 1..=4u64 {
        e.handle(Event::Connect { conn });
        e.handle(Event::Data { conn, bytes: Frame::hello().encode() });
    }
    e.handle(Event::Tick);
    for _ in 0..ticks {
        for conn in 1..=4u64 {
            // A seeded burst: mostly moves, some attacks/pickups, and
            // the occasional raw garbage the decoder must survive.
            let burst = 1 + rng.below(12);
            for _ in 0..burst {
                let bytes = match rng.below(10) {
                    0 => (0..rng.below(9) + 1).map(|_| (rng.next() & 0xff) as u8).collect(),
                    1 => Frame::action(ActionOp::Attack, rng.below(250) as u8, rng.below(8) as u16, 0)
                        .encode(),
                    2 => Frame::action(ActionOp::Pickup, rng.below(250) as u8, 0, 0).encode(),
                    _ => Frame::action(
                        ActionOp::Move,
                        rng.below(250) as u8,
                        rng.below(256) as u16,
                        rng.below(256) as u16,
                    )
                    .encode(),
                };
                e.handle(Event::Data { conn, bytes });
            }
        }
        e.handle(Event::Tick);
    }
    e.shutdown();
    CampaignOutcome {
        fault_log: faults.log(),
        ladder: e.ladder_trajectory(),
        commits: e.commits(),
        executed: stats.actions_executed.load(std::sync::atomic::Ordering::Relaxed),
        audit: e.world().audit(),
    }
}

#[test]
fn same_seed_replays_identical_fault_log_and_ladder_trajectory() {
    let a = run_campaign(42, 60);
    let b = run_campaign(42, 60);
    assert!(!a.fault_log.is_empty(), "the socket plan fired under traffic");
    assert_eq!(a.fault_log, b.fault_log, "fault schedule is a pure function of the seed");
    assert_eq!(a.ladder, b.ladder, "ladder trajectory replays bit-identically");
    assert_eq!(a.commits, b.commits);
}

#[test]
fn different_seeds_draw_different_fault_schedules() {
    let a = run_campaign(42, 40);
    let b = run_campaign(43, 40);
    assert_ne!(a.fault_log, b.fault_log);
}

#[test]
fn chaos_campaign_loses_no_committed_updates() {
    for seed in [7, 42, 0xfeed] {
        let o = run_campaign(seed, 80);
        assert_eq!(
            o.commits, o.executed,
            "seed {seed}: every executed action is exactly one STM commit"
        );
        assert_eq!(o.audit, 0, "seed {seed}: world survived the campaign consistent");
    }
}

#[test]
fn overload_trips_the_breaker_and_recovery_recloses_it() {
    // A breaker with a short cooldown and probe window so the whole
    // trip → cooldown → half-open → re-close arc fits in one test.
    let breaker = Arc::new(Breaker::new(
        BreakerConfig {
            cooldown: 16,
            probe_window: 8,
            starvation_releases: 10_000,
            max_abort_pct: 100.0,
            max_released_pct: 100.0,
            ..BreakerConfig::default()
        },
        None,
    ));
    let empty: Vec<Vec<StateKey>> = Vec::new();
    let model = Arc::new(GuidedModel::build(Tsa::from_runs(&empty), &GuidanceConfig::default()));
    let hook = Arc::new(GuidedHook::with_robustness(
        model,
        GuidanceConfig::default(),
        None,
        None,
        Some(breaker.clone()),
        None,
    ));
    let tm = LibTm::with_hook(hook, LibTmConfig::default());
    let cfg = EngineConfig {
        players: 8,
        deterministic: true,
        admission: small_admission(),
        ..EngineConfig::default()
    };
    let mut e =
        Engine::new(cfg, tm, Some(breaker.clone()), None, Arc::new(ServerStats::new()));
    e.handle(Event::Connect { conn: 1 });
    e.handle(Event::Data { conn: 1, bytes: Frame::hello().encode() });
    e.handle(Event::Tick);

    // Flood far past the budget until the ladder forces the breaker open.
    for _ in 0..12 {
        for i in 0..40u16 {
            let f = Frame::action(ActionOp::Move, (i % 4) as u8, 10 + i, 20);
            e.handle(Event::Data { conn: 1, bytes: f.encode() });
        }
        e.handle(Event::Tick);
        if e.rung() >= Rung::GuidedBypass {
            break;
        }
    }
    assert!(e.rung() >= Rung::GuidedBypass, "sustained overload reached guided-bypass");
    assert!(breaker.trips() >= 1, "entering guided-bypass forced the breaker open");
    assert_eq!(breaker.last_cause(), BreakerCause::Overload);

    // Calm traffic: light enough to descend the ladder, busy enough to
    // feed the breaker's cooldown and half-open probes.
    for t in 0..200 {
        let f = Frame::action(ActionOp::Move, 5, (t % 64) as u16, 30);
        e.handle(Event::Data { conn: 1, bytes: f.encode() });
        e.handle(Event::Tick);
        if breaker.recloses() >= 1 && e.rung() == Rung::FullTick {
            break;
        }
    }
    assert_eq!(e.rung(), Rung::FullTick, "ladder descended after the pressure lifted");
    assert!(breaker.recloses() >= 1, "breaker re-closed via its own probe path");
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert_eq!(e.world().audit(), 0);
}
