//! Guidance must never change program results — only timing. These tests
//! run workloads under default, recording, and guided hooks and compare
//! outcomes; they also exercise the model save/load path end to end.

use gstm_core::prelude::*;
use gstm_core::{model_io, GuidanceConfig};
use gstm_stamp::{by_name, InputSize, RunConfig};
use gstm_tl2::{Stm, StmConfig, TVar};
use std::sync::Arc;

#[test]
fn guided_counter_workload_is_exact() {
    // Train a model on the workload, then run guided: the counter total
    // must be exact regardless of gating decisions.
    let stm_cfg = StmConfig::with_yield_injection(2);
    let work = |stm: &Arc<Stm>, counters: &[TVar<u64>]| {
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let stm = Arc::clone(stm);
                let counters = counters.to_vec();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    for i in 0..200usize {
                        let c = &counters[(t as usize + i) % counters.len()];
                        ctx.atomically(TxnId(0), |tx| tx.modify(c, |x| x + 1));
                    }
                });
            }
        });
    };

    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for _ in 0..3 {
        let counters: Vec<TVar<u64>> = (0..3).map(|_| TVar::new(0)).collect();
        let stm = Stm::with_hook(rec.clone(), stm_cfg);
        work(&stm, &counters);
        runs.push(rec.take_run());
    }
    let model = Arc::new(GuidedModel::build(
        Tsa::from_runs(&runs),
        &GuidanceConfig::default(),
    ));

    let counters: Vec<TVar<u64>> = (0..3).map(|_| TVar::new(0)).collect();
    let hook = Arc::new(GuidedHook::new(model, GuidanceConfig::default()));
    let stm = Stm::with_hook(hook.clone(), stm_cfg);
    work(&stm, &counters);
    let total: u64 = counters.iter().map(TVar::load_quiesced).sum();
    assert_eq!(total, 800, "guidance corrupted the computation");
    let gate = hook.stats();
    assert!(
        gate.passed + gate.waited + gate.released > 0,
        "the gate was actually consulted"
    );
}

#[test]
fn guided_stamp_results_match_default() {
    // genome's checksum is schedule-invariant: default and guided must
    // agree bit-for-bit.
    let bench = by_name("genome").unwrap();
    let run_cfg = RunConfig {
        threads: 4,
        size: InputSize::Small,
        seed: 31,
    };
    let stm_cfg = StmConfig::with_yield_injection(3);

    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for _ in 0..2 {
        let stm = Stm::with_hook(rec.clone(), stm_cfg);
        bench.run(&stm, &run_cfg);
        runs.push(rec.take_run());
    }
    let model = Arc::new(GuidedModel::build(
        Tsa::from_runs(&runs),
        &GuidanceConfig::default(),
    ));

    let default = bench.run(&Stm::new(stm_cfg), &run_cfg);
    let guided = bench.run(
        &Stm::with_hook(
            Arc::new(GuidedHook::new(model, GuidanceConfig::default())),
            stm_cfg,
        ),
        &run_cfg,
    );
    assert_eq!(default.checksum, guided.checksum);
}

#[test]
fn model_round_trips_through_disk_and_still_guides() {
    // Profile kmeans, save the automaton in the compact format, reload
    // it, rebuild the guided model, and run guided.
    let bench = by_name("kmeans").unwrap();
    let run_cfg = RunConfig {
        threads: 2,
        size: InputSize::Small,
        seed: 7,
    };
    let stm_cfg = StmConfig::with_yield_injection(3);

    let rec = Arc::new(RecorderHook::new());
    let mut runs = Vec::new();
    for _ in 0..2 {
        let stm = Stm::with_hook(rec.clone(), stm_cfg);
        bench.run(&stm, &run_cfg);
        runs.push(rec.take_run());
    }
    let tsa = Tsa::from_runs(&runs);

    let dir = std::env::temp_dir().join("gstm_integration_model");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state_data");
    model_io::save(&tsa, &path).unwrap();
    let loaded = model_io::load(&path).unwrap();
    assert_eq!(loaded.num_states(), tsa.num_states());
    assert_eq!(loaded.num_edges(), tsa.num_edges());

    let model = Arc::new(GuidedModel::build(loaded, &GuidanceConfig::default()));
    let hook = Arc::new(GuidedHook::new(model, GuidanceConfig::default()));
    let r = bench.run(&Stm::with_hook(hook, stm_cfg), &run_cfg);
    assert!(r.per_thread_secs.iter().all(|&t| t > 0.0));
    std::fs::remove_file(&path).ok();
}

#[test]
fn gate_released_threads_always_make_progress() {
    // A model trained on a *different* workload gives useless guidance;
    // the k-retry escape must still let every transaction through.
    let alien_runs = vec![vec![
        StateKey::solo(Pair::new(TxnId(9), ThreadId(9))),
        StateKey::solo(Pair::new(TxnId(8), ThreadId(8))),
        StateKey::solo(Pair::new(TxnId(9), ThreadId(9))),
    ]];
    let model = Arc::new(GuidedModel::build(
        Tsa::from_runs(&alien_runs),
        &GuidanceConfig::default(),
    ));
    let hook = Arc::new(GuidedHook::new(model, GuidanceConfig::default()));
    let stm = Stm::with_hook(hook, StmConfig::default());
    let v = TVar::new(0u32);
    // Drive the tracker into the alien model's state space.
    let mut ctx = stm.register_as(ThreadId(9));
    ctx.atomically(TxnId(9), |tx| tx.modify(&v, |x| x + 1));
    // Now a completely unrelated transaction must still complete.
    let mut ctx2 = stm.register_as(ThreadId(0));
    ctx2.atomically(TxnId(0), |tx| tx.modify(&v, |x| x + 1));
    assert_eq!(v.load_quiesced(), 2);
}
