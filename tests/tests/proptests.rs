//! Property-based tests over the model pipeline and the transactional
//! containers.

use gstm_core::prelude::*;
use gstm_core::{analyzer, metrics, model_io, GuidanceConfig};
use proptest::prelude::*;

fn arb_pair() -> impl Strategy<Value = Pair> {
    (0u16..4, 0u16..8).prop_map(|(t, th)| Pair::new(TxnId(t), ThreadId(th)))
}

fn arb_state() -> impl Strategy<Value = StateKey> {
    (proptest::collection::vec(arb_pair(), 0..4), arb_pair())
        .prop_map(|(aborts, commit)| StateKey::new(aborts, commit))
}

fn arb_runs() -> impl Strategy<Value = Vec<Vec<StateKey>>> {
    proptest::collection::vec(proptest::collection::vec(arb_state(), 1..40), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn state_key_is_order_invariant(mut aborts in proptest::collection::vec(arb_pair(), 0..6), commit in arb_pair()) {
        let a = StateKey::new(aborts.clone(), commit);
        aborts.reverse();
        let b = StateKey::new(aborts, commit);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tsa_probabilities_sum_to_one(runs in arb_runs()) {
        let tsa = Tsa::from_runs(&runs);
        for from in tsa.state_ids() {
            let total: f64 = tsa
                .state_ids()
                .map(|to| tsa.probability(from, to))
                .sum();
            // Either no outbound edges (terminal) or a proper distribution.
            prop_assert!(
                total.abs() < 1e-9 || (total - 1.0).abs() < 1e-9,
                "state {from:?} sums to {total}"
            );
        }
    }

    #[test]
    fn model_encoding_round_trips(runs in arb_runs()) {
        let tsa = Tsa::from_runs(&runs);
        let bytes = model_io::encode(&tsa);
        let back = model_io::decode(&bytes).unwrap();
        prop_assert_eq!(back.num_states(), tsa.num_states());
        prop_assert_eq!(back.num_edges(), tsa.num_edges());
        for id in tsa.state_ids() {
            prop_assert_eq!(back.state(id), tsa.state(id));
            prop_assert_eq!(back.outbound(id), tsa.outbound(id));
        }
    }

    #[test]
    fn guided_model_keeps_subset_and_always_keeps_top_edge(runs in arb_runs(), tf in 1.0f64..10.0) {
        let tsa = Tsa::from_runs(&runs);
        let model = GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(tf));
        for id in model.tsa().state_ids() {
            let (all, kept) = model.dest_counts(id);
            prop_assert!(kept <= all);
            if all > 0 {
                prop_assert!(kept >= 1, "the P_h edge always survives");
                // The top-probability destination is allowed.
                let top = model.tsa().outbound(id)[0].0;
                for p in model.tsa().state(top).pairs() {
                    prop_assert!(model.is_allowed(id, p));
                }
            }
        }
    }

    #[test]
    fn analyzer_metric_is_bounded_and_monotone_in_tfactor(runs in arb_runs()) {
        let tsa = Tsa::from_runs(&runs);
        let mut last = 0.0f64;
        for tf in [1.0, 2.0, 4.0, 8.0] {
            let cfg = GuidanceConfig::with_tfactor(tf);
            let model = GuidedModel::build(tsa.clone(), &cfg);
            let rep = analyzer::analyze_with(&model, &cfg);
            prop_assert!((0.0..=100.0 + 1e-9).contains(&rep.guidance_metric_pct));
            prop_assert!(rep.guidance_metric_pct + 1e-9 >= last,
                "larger Tfactor keeps at least as many destinations");
            last = rep.guidance_metric_pct;
        }
    }

    #[test]
    fn non_determinism_counts_distinct_states(runs in arb_runs()) {
        let nd = metrics::non_determinism(&runs);
        let mut set = std::collections::HashSet::new();
        for run in &runs {
            for s in run {
                set.insert(s.clone());
            }
        }
        prop_assert_eq!(nd, set.len());
        let tsa = Tsa::from_runs(&runs);
        prop_assert_eq!(nd, tsa.num_states());
    }

    #[test]
    fn histogram_totals_are_consistent(samples in proptest::collection::vec(0u32..50, 1..200)) {
        let mut h = AbortHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.total_commits(), samples.len() as u64);
        prop_assert_eq!(h.total_aborts(), samples.iter().map(|&s| s as u64).sum::<u64>());
        prop_assert_eq!(h.max_aborts(), samples.iter().copied().max().unwrap());
        // Tail metric only grows when new distinct abort counts appear.
        let before = h.tail_metric();
        let mut h2 = h.clone();
        h2.record(*samples.first().unwrap());
        prop_assert_eq!(h2.tail_metric(), before);
    }

    #[test]
    fn std_dev_is_translation_invariant_and_scales(xs in proptest::collection::vec(-1e3f64..1e3, 2..50), shift in -100f64..100.0) {
        let sd = metrics::std_dev(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((metrics::std_dev(&shifted) - sd).abs() < 1e-6);
        let scaled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        prop_assert!((metrics::std_dev(&scaled) - 2.0 * sd).abs() < 1e-6);
    }
}

mod tseq_props {
    use super::*;
    use gstm_core::events::{AbortCause, TxEvent};
    use gstm_core::tseq::parse_causal;
    use gstm_core::tss::parse_tseq;

    fn arb_event() -> impl Strategy<Value = TxEvent> {
        prop_oneof![
            arb_pair().prop_map(TxEvent::Begin),
            (arb_pair(), prop_oneof![
                Just(AbortCause::ReadVersion),
                Just(AbortCause::Validation),
                Just(AbortCause::Explicit),
                (0u16..8).prop_map(|t| AbortCause::ReadLocked {
                    owner: Some(ThreadId(t))
                }),
            ])
                .prop_map(|(p, c)| TxEvent::Abort(p, c)),
            arb_pair().prop_map(|p| TxEvent::Commit(p, 0)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn causal_parse_emits_one_state_per_commit(events in proptest::collection::vec(arb_event(), 0..120)) {
            let commits = events
                .iter()
                .filter(|e| matches!(e, TxEvent::Commit(..)))
                .count();
            let tseq = parse_causal(&events);
            prop_assert_eq!(tseq.len(), commits);
            // Commit order is preserved.
            let commit_pairs: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    TxEvent::Commit(p, _) => Some(*p),
                    _ => None,
                })
                .collect();
            let tseq_commits: Vec<_> = tseq.iter().map(|s| s.commit()).collect();
            prop_assert_eq!(tseq_commits, commit_pairs);
        }

        #[test]
        fn causal_attributes_each_abort_at_most_once(events in proptest::collection::vec(arb_event(), 0..120)) {
            let aborts = events
                .iter()
                .filter(|e| matches!(e, TxEvent::Abort(..)))
                .count();
            let tseq = parse_causal(&events);
            let attributed: usize = tseq.iter().map(|s| s.aborts().len()).sum();
            // Canonicalization dedups identical pairs inside one window,
            // so attributed <= aborts always holds.
            prop_assert!(attributed <= aborts);
        }

        #[test]
        fn windowed_parse_never_drops_commits(events in proptest::collection::vec(arb_event(), 0..120)) {
            let commits = events
                .iter()
                .filter(|e| matches!(e, TxEvent::Commit(..)))
                .count();
            prop_assert_eq!(parse_tseq(&events).len(), commits);
        }
    }
}

mod container_props {
    use super::*;
    use gstm_core::TxnId;
    use gstm_structs::{THashMap, TList, TMap};
    use gstm_tl2::{Stm, StmConfig};
    use std::collections::BTreeMap;

    #[derive(Clone, Debug)]
    enum Op {
        Insert(u64, u64),
        Remove(u64),
        Get(u64),
        Upsert(u64, u64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..40, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u64..40).prop_map(Op::Remove),
            (0u64..40).prop_map(Op::Get),
            (0u64..40, any::<u64>()).prop_map(|(k, v)| Op::Upsert(k, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tmap_matches_btreemap(ops in proptest::collection::vec(arb_op(), 1..150)) {
            let stm = Stm::new(StmConfig::default());
            let mut ctx = stm.register();
            let map: TMap<u64> = TMap::new();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        let did = ctx.atomically(TxnId(0), |tx| map.insert(tx, k, v));
                        prop_assert_eq!(did, !model.contains_key(&k));
                        model.entry(k).or_insert(v);
                    }
                    Op::Remove(k) => {
                        let got = ctx.atomically(TxnId(0), |tx| map.remove(tx, k));
                        prop_assert_eq!(got, model.remove(&k));
                    }
                    Op::Get(k) => {
                        let got = ctx.atomically(TxnId(0), |tx| map.get(tx, k));
                        prop_assert_eq!(got, model.get(&k).copied());
                    }
                    Op::Upsert(k, v) => {
                        let old = ctx.atomically(TxnId(0), |tx| map.upsert(tx, k, v));
                        prop_assert_eq!(old, model.insert(k, v));
                    }
                }
            }
            let snap = ctx.atomically(TxnId(0), |tx| map.snapshot(tx));
            prop_assert_eq!(snap, model.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn tlist_matches_btreemap(ops in proptest::collection::vec(arb_op(), 1..100)) {
            let stm = Stm::new(StmConfig::default());
            let mut ctx = stm.register();
            let list: TList<u64> = TList::new();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        let did = ctx.atomically(TxnId(0), |tx| list.insert(tx, k, v));
                        prop_assert_eq!(did, !model.contains_key(&k));
                        model.entry(k).or_insert(v);
                    }
                    Op::Remove(k) => {
                        let got = ctx.atomically(TxnId(0), |tx| list.remove(tx, k));
                        prop_assert_eq!(got, model.remove(&k));
                    }
                    Op::Get(k) => {
                        let got = ctx.atomically(TxnId(0), |tx| list.get(tx, k));
                        prop_assert_eq!(got, model.get(&k).copied());
                    }
                    Op::Upsert(k, v) => {
                        let old = ctx.atomically(TxnId(0), |tx| list.upsert(tx, k, v));
                        prop_assert_eq!(old, model.insert(k, v));
                    }
                }
            }
            let snap = ctx.atomically(TxnId(0), |tx| list.snapshot(tx));
            prop_assert_eq!(snap, model.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn thashmap_matches_model(ops in proptest::collection::vec(arb_op(), 1..100), buckets in 1usize..16) {
            let stm = Stm::new(StmConfig::default());
            let mut ctx = stm.register();
            let map: THashMap<u64> = THashMap::new(buckets);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        let did = ctx.atomically(TxnId(0), |tx| map.insert(tx, k, v));
                        prop_assert_eq!(did, !model.contains_key(&k));
                        model.entry(k).or_insert(v);
                    }
                    Op::Remove(k) => {
                        let got = ctx.atomically(TxnId(0), |tx| map.remove(tx, k));
                        prop_assert_eq!(got, model.remove(&k));
                    }
                    Op::Get(k) => {
                        let got = ctx.atomically(TxnId(0), |tx| map.get(tx, k));
                        prop_assert_eq!(got, model.get(&k).copied());
                    }
                    Op::Upsert(k, v) => {
                        let old = ctx.atomically(TxnId(0), |tx| map.upsert(tx, k, v));
                        prop_assert_eq!(old, model.insert(k, v));
                    }
                }
            }
            let len = ctx.atomically(TxnId(0), |tx| map.len(tx));
            prop_assert_eq!(len as usize, model.len());
        }
    }
}
