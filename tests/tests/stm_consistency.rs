//! Cross-crate STM consistency stress tests: TL2 + containers under
//! dense interleaving, with structural audits after the dust settles.

use gstm_core::{ThreadId, TxnId};
use gstm_structs::{TBitmap, THashMap, TList, TMap, TQueue};
use gstm_tl2::{Stm, StmConfig, TVar};
use std::sync::Arc;

#[test]
fn mixed_structure_transaction_is_all_or_nothing() {
    // One transaction that touches a map, a queue, a bitmap, and a
    // counter: after concurrent execution, all four views agree.
    let stm = Stm::new(StmConfig::with_yield_injection(2));
    let map: TMap<u64> = TMap::new();
    let queue: TQueue<u64> = TQueue::new();
    let bitmap = TBitmap::new(4096);
    let counter = TVar::new(0u64);

    std::thread::scope(|s| {
        for t in 0..4u16 {
            let stm = Arc::clone(&stm);
            let map = map.clone();
            let queue = queue.clone();
            let bitmap = bitmap.clone();
            let counter = counter.clone();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                for i in 0..80u64 {
                    let key = t as u64 * 1000 + i;
                    ctx.atomically(TxnId(0), |tx| {
                        map.insert(tx, key, key)?;
                        queue.push(tx, key)?;
                        bitmap.set(tx, key as usize)?;
                        tx.modify(&counter, |c| c + 1)
                    });
                }
            });
        }
    });

    let stm2 = Stm::new(StmConfig::default());
    let mut ctx = stm2.register();
    let (map_len, q_len, ones, count) = ctx.atomically(TxnId(1), |tx| {
        Ok((
            map.len(tx)?,
            queue.len(tx)?,
            bitmap.count_ones(tx)?,
            tx.read(&counter)?,
        ))
    });
    assert_eq!(map_len, 320);
    assert_eq!(q_len, 320);
    assert_eq!(ones, 320);
    assert_eq!(count, 320);
}

#[test]
fn producer_consumer_through_hashmap_and_list_conserves_items() {
    // Producers stage items in a hash map; movers atomically transfer
    // them into a list; nothing is lost or duplicated.
    let stm = Stm::new(StmConfig::with_yield_injection(2));
    let staged: THashMap<u64> = THashMap::new(32);
    let done: TList<u64> = TList::new();
    let produced = 3u64 * 60;

    std::thread::scope(|s| {
        // Producers.
        for t in 0..3u16 {
            let stm = Arc::clone(&stm);
            let staged = staged.clone();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                for i in 0..60u64 {
                    let key = t as u64 * 100 + i;
                    ctx.atomically(TxnId(0), |tx| staged.insert(tx, key, key * 2));
                }
            });
        }
        // Movers: scan a key range, move one item at a time.
        for t in 3..5u16 {
            let stm = Arc::clone(&stm);
            let staged = staged.clone();
            let done = done.clone();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                let mut idle = 0;
                while idle < 400 {
                    let mut moved = false;
                    for key in 0..300u64 {
                        let did = ctx.atomically(TxnId(1), |tx| {
                            match staged.remove(tx, key)? {
                                Some(v) => {
                                    done.insert(tx, key, v)?;
                                    Ok(true)
                                }
                                None => Ok(false),
                            }
                        });
                        moved |= did;
                    }
                    if moved {
                        idle = 0;
                    } else {
                        idle += 1;
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    let stm2 = Stm::new(StmConfig::default());
    let mut ctx = stm2.register();
    let (left, finished) = ctx.atomically(TxnId(2), |tx| {
        Ok((staged.len(tx)?, done.len(tx)?))
    });
    assert_eq!(left + finished, produced, "items conserved");
    assert_eq!(left, 0, "movers drained the staging table");
    // Values preserved through the move.
    let snap = ctx.atomically(TxnId(2), |tx| done.snapshot(tx));
    assert!(snap.iter().all(|&(k, v)| v == k * 2));
}

#[test]
fn long_reader_sees_consistent_aggregate() {
    // Writers keep the sum of a vector invariant; a long transactional
    // reader must never observe a partial update, even while being
    // aborted often.
    let stm = Stm::new(StmConfig::with_yield_injection(1));
    let cells: Vec<TVar<i64>> = (0..32).map(|_| TVar::new(10)).collect();
    let expected: i64 = 320;

    std::thread::scope(|s| {
        for t in 0..3u16 {
            let stm = Arc::clone(&stm);
            let cells = cells.clone();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                let mut r = t as u64 + 1;
                for _ in 0..300 {
                    r = r.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let i = (r >> 20) as usize % cells.len();
                    let j = (r >> 40) as usize % cells.len();
                    if i == j {
                        continue;
                    }
                    let (a, b) = (cells[i].clone(), cells[j].clone());
                    ctx.atomically(TxnId(0), |tx| {
                        let av = tx.read(&a)?;
                        let bv = tx.read(&b)?;
                        tx.write(&a, av - 3)?;
                        tx.write(&b, bv + 3)?;
                        Ok(())
                    });
                }
            });
        }
        let stm_r = Arc::clone(&stm);
        let cells_r = cells.clone();
        s.spawn(move || {
            let mut ctx = stm_r.register_as(ThreadId(3));
            for _ in 0..150 {
                let sum = ctx.atomically(TxnId(1), |tx| {
                    let mut sum = 0;
                    for c in &cells_r {
                        sum += tx.read(c)?;
                    }
                    Ok(sum)
                });
                assert_eq!(sum, expected, "torn aggregate observed");
            }
        });
    });
    let final_sum: i64 = cells.iter().map(TVar::load_quiesced).sum();
    assert_eq!(final_sum, expected);
}
