//! End-to-end pipeline integration: every STAMP benchmark through
//! profile → model → analyze → default/guided measurement.

use gstm_core::{AffinitySource, GuidanceConfig, PinPolicy};
use gstm_harness::experiment::{run_experiment, ExperimentConfig};
use gstm_stamp::{all_benchmarks, InputSize};
use gstm_tl2::ClockMode;

fn cfg(threads: u16) -> ExperimentConfig {
    ExperimentConfig {
        threads,
        profile_runs: 3,
        measure_runs: 4,
        train_size: InputSize::Small,
        test_size: InputSize::Small,
        yield_k: Some(3),
        guidance: GuidanceConfig::default(),
        seed: 0xbeef,
        adaptive: None,
        profile_threads: None,
        clock: ClockMode::Global,
        pin: PinPolicy::None,
        affinity: AffinitySource::Tsa,
    }
}

#[test]
fn every_benchmark_completes_the_pipeline() {
    for bench in all_benchmarks() {
        let e = run_experiment(&*bench, &cfg(4));
        assert!(e.model_states > 0, "{}: empty model", e.name);
        assert!(
            (0.0..=100.0).contains(&e.analyzer.guidance_metric_pct),
            "{}: metric out of range",
            e.name
        );
        assert_eq!(e.default_m.per_thread_times.len(), 4, "{}", e.name);
        assert_eq!(e.guided_m.per_thread_times.len(), 4, "{}", e.name);
        for run in &e.default_m.per_thread_times {
            assert_eq!(run.len(), 4, "{}: thread count", e.name);
            assert!(run.iter().all(|&t| t > 0.0), "{}: zero timing", e.name);
        }
        assert!(e.default_m.non_determinism > 0, "{}", e.name);
        assert!(e.guided_m.non_determinism > 0, "{}", e.name);
        assert!(e.slowdown() > 0.0, "{}", e.name);
        // Work happened in both modes.
        let dc: u64 = e
            .default_m
            .per_thread_hists
            .iter()
            .map(|h| h.total_commits())
            .sum();
        let gc: u64 = e
            .guided_m
            .per_thread_hists
            .iter()
            .map(|h| h.total_commits())
            .sum();
        assert!(dc > 0 && gc > 0, "{}: no commits", e.name);
    }
}

#[test]
fn analyzer_ranks_ssca2_worst_among_contended_benchmarks() {
    // The paper's Table I shape: ssca2's transition distribution is the
    // most uniform of the suite because it barely conflicts. Compare it
    // against the most biased models (kmeans) rather than every
    // benchmark — list-heavy ones legitimately score high too.
    let ssca2 = all_benchmarks()
        .into_iter()
        .find(|b| b.name() == "ssca2")
        .unwrap();
    let kmeans = all_benchmarks()
        .into_iter()
        .find(|b| b.name() == "kmeans")
        .unwrap();
    let e_s = run_experiment(&*ssca2, &cfg(4));
    let e_k = run_experiment(&*kmeans, &cfg(4));
    // ssca2 has near-zero aborts; its states are almost all solo commits.
    let s_aborts = e_s.default_m.total_aborts();
    let k_aborts = e_k.default_m.total_aborts();
    assert!(
        s_aborts * 4 < k_aborts.max(1),
        "ssca2 ({s_aborts}) must abort far less than kmeans ({k_aborts})"
    );
}

#[test]
fn deterministic_benchmarks_produce_identical_checksums_across_modes() {
    use gstm_stamp::{by_name, RunConfig};
    use gstm_tl2::{Stm, StmConfig};
    // genome and intruder define schedule-invariant checksums; default
    // and guided execution must agree (guidance never changes results).
    for name in ["genome", "intruder", "ssca2"] {
        let bench = by_name(name).unwrap();
        let run_cfg = RunConfig {
            threads: 4,
            size: InputSize::Small,
            seed: 123,
        };
        let stm_cfg = StmConfig::with_yield_injection(3);
        let r1 = bench.run(&Stm::new(stm_cfg), &run_cfg);
        let r2 = bench.run(&Stm::new(stm_cfg), &run_cfg);
        assert_eq!(r1.checksum, r2.checksum, "{name}: run-to-run checksum");
    }
}
