//! Chaos replay determinism: the fault-injection runtime must be a pure
//! function of `(seed, interleaving)`.
//!
//! The same seeded interleaver as `schedule_replay` drives N *logical*
//! threads through the gate/abort/commit protocol on one OS thread, but
//! with a logging [`FaultPlan`] armed: gate stalls and transition storms
//! fire inside the guided hook, and a small circuit breaker watches the
//! gate stream. Because both the interleaving and every fault draw are
//! pure functions of the seed, two replays of a seed must agree
//! bit-for-bit on:
//!
//! * the **fault schedule** — the full `FaultRecord` log (site, slot,
//!   probe ordinal, entropy), not just fire counts;
//! * the **recorded Tseq** and the gate-outcome partition
//!   (passed + waited + released = gate calls, fail-open bypasses
//!   included);
//! * the **breaker trajectory** — trips, half-open probes, re-closes,
//!   and final state.
//!
//! A second suite replays the real TL2 backend single-threaded under
//! forced aborts + commit delays and demands the same bit-identical
//! schedule, plus untouched transactional semantics (the counter ends at
//! exactly the committed count).

use gstm_core::faultinject::{FaultRecord, FaultSite};
use gstm_core::prelude::*;
use gstm_tl2::{Detection, Stm, StmBuilder, StmConfig, TVar};
use std::sync::Arc;

// Seeded PRNG: the shared splitmix64 stream (gstm_core::rng) — the same
// interleaver as schedule_replay and the model checker.
use gstm_core::rng::SplitMix64 as Rng;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

const THREADS: u16 = 4;
const TXNS: u16 = 3;
const STEPS: usize = 480;

fn p(txn: u16, thread: u16) -> Pair {
    Pair::new(TxnId(txn), ThreadId(thread))
}

fn replay_config() -> GuidanceConfig {
    // Single OS thread: a disallowed pair can only be released by
    // exhausting its retries, so keep the spin budget small.
    GuidanceConfig { k_retries: 2, wait_spins: 4, ..GuidanceConfig::default() }
}

/// Deterministic training sequence over the replay's pair alphabet.
fn seed_model(cfg: &GuidanceConfig) -> Arc<GuidedModel> {
    let mut rng = Rng::new(0xfeed);
    let run: Vec<StateKey> = (0..96)
        .map(|_| {
            let commit = p(rng.below(TXNS as u64) as u16, rng.below(THREADS as u64) as u16);
            if rng.below(3) == 0 {
                let abort =
                    p(rng.below(TXNS as u64) as u16, rng.below(THREADS as u64) as u16);
                StateKey::new(vec![abort], commit)
            } else {
                StateKey::solo(commit)
            }
        })
        .collect();
    Arc::new(GuidedModel::build(Tsa::from_runs(&[run]), cfg))
}

/// A breaker tight enough to walk the whole ladder inside one replay:
/// the scripted abort storm in the first phase crosses `max_abort_pct`,
/// the calm second phase lets the half-open probe re-close. Released-rate
/// and starvation bounds are parked high so the trip cause is the
/// scripted one.
fn small_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 24,
        max_released_pct: 95.0,
        max_abort_pct: 30.0,
        starvation_releases: 64,
        cooldown: 16,
        probe_window: 12,
        ..BreakerConfig::default()
    }
}

/// Everything one chaos replay produces that a re-run with the same seed
/// must reproduce exactly.
#[derive(Debug, PartialEq)]
struct ChaosOutcome {
    fault_log: Vec<FaultRecord>,
    stalls: u64,
    storms: u64,
    tseq: Vec<StateKey>,
    passed: u64,
    waited: u64,
    released: u64,
    trips: u64,
    probes: u64,
    recloses: u64,
    final_state: &'static str,
}

/// Drive one seeded interleaving through a guided hook with gate stalls
/// and transition storms armed and a breaker watching the gate/abort
/// stream. The script aborts half its attempts in the first third of the
/// run (an abort storm that trips the breaker) and one in eight
/// afterwards (a healthy tail the half-open probe can re-admit).
fn replay(model: &Arc<GuidedModel>, seed: u64) -> ChaosOutcome {
    let spec = format!("{seed}:gate-stalls@250+storms@250");
    let plan = Arc::new(FaultPlan::parse_spec(&spec).unwrap().with_log());
    let breaker = Arc::new(Breaker::new(small_breaker(), None));
    let hook = GuidedHook::with_robustness(
        model.clone(),
        replay_config(),
        None,
        None,
        Some(breaker.clone()),
        Some(plan.clone()),
    );

    let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut in_txn = [false; THREADS as usize];
    let mut txn_ctr = [0u64; THREADS as usize];
    let mut gate_calls = 0u64;

    for step in 0..STEPS {
        let t = rng.below(THREADS as u64) as usize;
        let who = p((txn_ctr[t] % TXNS as u64) as u16, t as u16);
        // One abort draw per step regardless of phase, so the schedule
        // prefix is shared between the stormy and calm phases.
        let roll = rng.below(8);
        let abort = if step < STEPS / 3 { roll < 4 } else { roll < 1 };
        if !in_txn[t] {
            hook.gate(who);
            gate_calls += 1;
            in_txn[t] = true;
        } else if abort {
            hook.on_abort(who, AbortCause::Validation);
            in_txn[t] = false;
        } else {
            hook.on_commit(who);
            txn_ctr[t] += 1;
            in_txn[t] = false;
        }
    }

    let stats = hook.stats();
    assert_eq!(
        stats.passed + stats.waited + stats.released,
        gate_calls,
        "seed {seed}: gate outcomes (fail-open bypasses included) must \
         partition the {gate_calls} gate calls: {stats:?}"
    );
    let log = plan.log();
    assert_eq!(
        log.len() as u64,
        plan.injected_total(),
        "seed {seed}: every injected fault must be logged"
    );
    ChaosOutcome {
        stalls: plan.injected(FaultSite::GateStall),
        storms: plan.injected(FaultSite::TransitionStorm),
        fault_log: log,
        tseq: hook.take_run(),
        passed: stats.passed,
        waited: stats.waited,
        released: stats.released,
        trips: breaker.trips(),
        probes: breaker.probes(),
        recloses: breaker.recloses(),
        final_state: breaker.state().label(),
    }
}

// ---------------------------------------------------------------------------
// Guided-hook chaos replays
// ---------------------------------------------------------------------------

/// 500 seeded chaos replays, each run twice: the fault schedule, Tseq,
/// gate partition, and breaker trajectory are bit-identical across the
/// replays of every seed.
#[test]
fn five_hundred_chaos_replays_are_bit_identical() {
    let model = seed_model(&replay_config());
    let mut total_fires = 0u64;
    let mut total_trips = 0u64;
    let mut total_recloses = 0u64;
    for seed in 0..500u64 {
        let a = replay(&model, seed);
        let b = replay(&model, seed);
        assert_eq!(a, b, "seed {seed}: same seed must reproduce the same chaos run");
        total_fires += a.fault_log.len() as u64;
        total_trips += a.trips;
        total_recloses += a.recloses;
    }
    // The sweep must actually exercise the machinery it claims to cover:
    // faults fire, the breaker trips, and at least some runs walk the
    // full Open → Half-Open → Closed ladder.
    assert!(total_fires > 500, "only {total_fires} faults across 500 seeds");
    assert!(total_trips > 0, "breaker never tripped across 500 seeds");
    assert!(total_recloses > 0, "breaker never re-closed across 500 seeds");
}

/// Different seeds must explore different fault schedules — otherwise
/// the 500-seed sweep replays a single schedule and proves nothing.
#[test]
fn distinct_seeds_yield_distinct_fault_schedules() {
    let model = seed_model(&replay_config());
    let distinct = (0..8u64)
        .map(|seed| {
            replay(&model, seed)
                .fault_log
                .iter()
                .map(|r| (r.site.index(), r.slot, r.n, r.entropy))
                .collect::<Vec<_>>()
        })
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(distinct > 1, "8 seeds produced one fault schedule");
}

// ---------------------------------------------------------------------------
// Real-backend (TL2) chaos replays
// ---------------------------------------------------------------------------

/// One single-threaded TL2 run under forced aborts + commit delays.
/// Returns the fault log plus the transactional outcome.
fn tl2_chaos_run(seed: u64) -> (Vec<FaultRecord>, u64, u64, Vec<StateKey>) {
    let spec = format!("{seed}:forced-aborts@300+commit-delays@200");
    let plan = Arc::new(FaultPlan::parse_spec(&spec).unwrap().with_log());
    let hook = Arc::new(RecorderHook::new());
    let stm = Stm::with_robustness(hook.clone(), StmConfig::default(), None, Some(plan.clone()));
    let v = TVar::new(0u64);
    let mut ctx = stm.register_as(ThreadId(0));
    let mut aborts = 0u64;
    for i in 0..120u16 {
        ctx.atomically(TxnId(i % TXNS), |tx| tx.modify(&v, |x| x + 1));
        aborts = plan.injected(FaultSite::Tl2Abort);
    }
    (plan.log(), v.load_quiesced(), aborts, hook.take_run())
}

/// One seeded TL2 replay with conflict provenance armed. Two logical
/// contexts on one OS thread share the caller's TVars (so conflicting
/// addresses are identical across replays of a seed): on a seeded subset
/// of iterations the writer opens an eager transaction on `vb` — holding
/// its lock — and runs the victim's transaction *inside* its closure, so
/// the victim's first attempt reads a locked location and aborts
/// `ReadLocked { owner: writer }` attributed to `vb`; the fault plan's
/// forced aborts land `Explicit`/unattributed on top. Returns the
/// quiesced snapshot plus the victim counter.
fn tl2_contention_run(va: &TVar<u64>, vb: &TVar<u64>, seed: u64) -> (ContentionStats, u64) {
    let spec = format!("{seed}:forced-aborts@300");
    let plan = Arc::new(FaultPlan::parse_spec(&spec).unwrap());
    let tracker = Arc::new(ContentionTracker::new());
    let stm = StmBuilder::new(StmConfig {
        detection: Detection::Eager,
        ..StmConfig::default()
    })
    .hook(Arc::new(RecorderHook::new()))
    .faults(Some(plan))
    .contention(Some(tracker.clone()))
    .build();
    let mut victim = stm.register_as(ThreadId(0));
    let mut writer = stm.register_as(ThreadId(1));
    let mut rng = Rng::new(seed ^ 0x5eed);
    // The TVars are shared across replays (address identity is the
    // point), so the semantic check is this run's increment delta.
    let start = va.load_quiesced();
    for i in 0..120u16 {
        let txid = TxnId(i % TXNS);
        if rng.below(3) == 0 {
            let mut nest = true;
            writer.atomically(TxnId(TXNS), |wtx| {
                wtx.modify(vb, |x| x + 1)?;
                if nest {
                    nest = false;
                    // `probe` survives the victim's retries: only the
                    // first attempt touches the locked `vb`, so the
                    // retry commits instead of spinning on the lock the
                    // enclosing writer cannot release yet.
                    let mut probe = true;
                    victim.atomically(txid, |tx| {
                        if probe {
                            probe = false;
                            tx.read(vb)?;
                        }
                        tx.modify(va, |x| x + 1)
                    });
                }
                Ok(())
            });
        } else {
            victim.atomically(txid, |tx| tx.modify(va, |x| x + 1));
        }
    }
    (tracker.snapshot(), va.load_quiesced() - start)
}

/// Conflict provenance under chaos is a pure function of
/// `(seed, interleaving)`: replaying a seed against the same shared
/// TVars must reproduce the merged [`ContentionStats`] bit for bit —
/// hot addresses, per-address counts and error bounds, the conflict
/// matrix, and the attribution partitions — and the sweep must actually
/// exercise both attribution classes (lock-owner conflicts at `vb`,
/// unattributed forced aborts).
#[test]
fn tl2_contention_attribution_replays_bit_identically() {
    let va = TVar::new(0u64);
    let vb = TVar::new(0u64);
    let mut attributed_total = 0u64;
    let mut pair_total = 0u64;
    let mut unattributed_total = 0u64;
    for seed in 0..24u64 {
        let (a, val_a) = tl2_contention_run(&va, &vb, seed);
        let (b, val_b) = tl2_contention_run(&va, &vb, seed);
        assert_eq!(a, b, "seed {seed}: same seed must reproduce the same attribution");
        assert_eq!(val_a, val_b);
        assert_eq!(val_a, 120, "seed {seed}: chaos must not lose or double commits");
        // Exactness on the quiesced snapshot: both partitions hold.
        let top_sum: u64 = a.top.iter().map(|h| h.count).sum();
        assert_eq!(top_sum + a.residual, a.attributed, "seed {seed}: sketch partition");
        let pair_sum: u64 = a.pairs.iter().map(|p| p.count).sum();
        assert_eq!(
            pair_sum + a.owner_unknown,
            a.attributed + a.unattributed,
            "seed {seed}: matrix partition"
        );
        // Every owner-attributed conflict in this script is the victim
        // reading the writer's eagerly locked `vb`.
        for p in &a.pairs {
            assert_eq!((p.victim, p.owner), (0, 1), "seed {seed}: unexpected pair {p:?}");
        }
        attributed_total += a.attributed;
        pair_total += pair_sum;
        unattributed_total += a.unattributed;
    }
    assert!(attributed_total > 0, "no attributed conflicts across 24 seeds");
    assert!(pair_total > 0, "no owner-bearing conflicts across 24 seeds");
    assert!(unattributed_total > 0, "no forced aborts landed unattributed across 24 seeds");
}

// ---------------------------------------------------------------------------
// SLO watchdog + flight-recorder chaos replays
// ---------------------------------------------------------------------------

/// Everything one seeded ops-plane run produces that a same-seed re-run
/// must reproduce **bit for bit**: the frozen `/metrics` body, the
/// `/health` document, the full SLO transition timeline, and every
/// flight-recorder dump byte.
#[derive(Debug, PartialEq)]
struct OpsOutcome {
    frozen: String,
    health: (bool, String),
    state: u8,
    timeline: Vec<(u64, u8, u8, Vec<String>)>,
    incidents: Vec<(u64, u64, String, String)>,
}

/// Drive a seeded workload through an [`OpsPlane`] at fixed logical roll
/// points: four calm windows, four stormy ones (every other attempt
/// aborts — far over the 25% SLO), then four calm recovery windows. The
/// roll stamps are logical (`w<N>`/`final`), the trace carries no
/// wall-clock, and every counter value is a pure function of the seed —
/// so the whole observable surface must replay exactly. The 6-slot ring
/// under 12 windows also forces evictions through the rollup path.
fn ops_replay(seed: u64) -> OpsOutcome {
    let spec =
        SloSpec::parse("abort-ratio<=25,warn=1,incident=2,clear=2,dump-windows=8").unwrap();
    let plane = OpsPlane::with_ring(spec, 6);
    let tel = Arc::new(Telemetry::with_trace_capacity(64));
    plane.attach(&tel);
    let mut rng = Rng::new(seed ^ 0xa11ce);
    for w in 0..12u64 {
        let stormy = (4..8).contains(&w);
        for _ in 0..40 {
            let who = p(rng.below(TXNS as u64) as u16, rng.below(THREADS as u64) as u16);
            let abort = if stormy { rng.below(2) == 0 } else { rng.below(10) == 0 };
            if abort {
                tel.record_abort(who, AbortCause::Validation);
            } else {
                tel.record_commit(who, 100 + rng.below(400));
            }
        }
        plane.roll_stamped(&format!("w{w}"));
    }
    let frozen = plane.freeze_stamped("final");
    plane.check_partition().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    OpsOutcome {
        frozen,
        health: plane.health_json(),
        state: plane.state().code(),
        timeline: plane
            .timeline()
            .iter()
            .map(|t| (t.window, t.from.code(), t.to.code(), t.breaches.clone()))
            .collect(),
        incidents: plane
            .incidents()
            .into_iter()
            .map(|i| (i.seq, i.window, i.stamp, i.json))
            .collect(),
    }
}

/// 50 seeded ops-plane runs, each executed twice: the incident timeline,
/// every flight-recorder dump, and the frozen exposition are
/// bit-identical across the replays of every seed — and the sweep
/// actually walks the whole Ok → Warn → Incident → recovery ladder.
#[test]
fn watchdog_incident_timelines_replay_bit_identically() {
    let mut total_incidents = 0u64;
    let mut recovered = 0u64;
    for seed in 0..50u64 {
        let a = ops_replay(seed);
        let b = ops_replay(seed);
        assert_eq!(a, b, "seed {seed}: same seed must reproduce the same ops run");
        assert!(
            !a.incidents.is_empty(),
            "seed {seed}: the storm phase must trip at least one incident"
        );
        for (_, _, _, json) in &a.incidents {
            assert!(json.contains("\"kind\": \"gstm_incident\""), "seed {seed}");
            assert!(json.contains("\"schema\": 1"), "seed {seed}");
            assert!(
                !json.contains("ts_ns"),
                "seed {seed}: wall-clock in a dump breaks replay identity"
            );
        }
        // The timeline must actually escalate through Warn into
        // Incident (codes 0 → 1 → 2), never jumping a rung.
        assert!(
            a.timeline.windows(2).any(|w| w[0].2 == 1 && w[1].2 == 2),
            "seed {seed}: no Warn → Incident escalation in {:?}",
            a.timeline
        );
        for t in &a.timeline {
            assert!(
                (t.1 as i8 - t.2 as i8).abs() == 1,
                "seed {seed}: transition skipped a rung: {t:?}"
            );
        }
        total_incidents += a.incidents.len() as u64;
        if a.state != 2 {
            recovered += 1;
        }
    }
    assert!(total_incidents >= 50, "only {total_incidents} incidents across 50 seeds");
    assert!(recovered > 0, "no run recovered out of Incident across 50 seeds");
}

/// Different seeds must produce different observable ops runs —
/// otherwise the sweep above replays one schedule and proves nothing.
#[test]
fn distinct_seeds_yield_distinct_ops_runs() {
    let distinct = (0..8u64)
        .map(|seed| ops_replay(seed).frozen)
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(distinct > 1, "8 seeds produced one frozen exposition");
}

/// The real TL2 commit path under chaos: bit-identical fault schedule
/// across replays, and the forced aborts must be *semantically* clean —
/// every transaction still commits exactly once.
#[test]
fn tl2_forced_abort_replays_are_deterministic_and_lossless() {
    let mut total_aborts = 0u64;
    for seed in 0..40u64 {
        let (log_a, val_a, aborts_a, tseq_a) = tl2_chaos_run(seed);
        let (log_b, val_b, aborts_b, tseq_b) = tl2_chaos_run(seed);
        assert_eq!(log_a, log_b, "seed {seed}: fault schedule must replay");
        assert_eq!(tseq_a, tseq_b, "seed {seed}: recorded Tseq must replay");
        assert_eq!(val_a, val_b);
        assert_eq!(aborts_a, aborts_b);
        // A forced abort rolls back through the ordinary retry path, so
        // the counter lands on exactly one increment per transaction.
        assert_eq!(val_a, 120, "seed {seed}: forced aborts must not lose or double commits");
        assert_eq!(tseq_a.len(), 120, "seed {seed}: one recorded state per commit");
        total_aborts += aborts_a;
    }
    assert!(total_aborts > 100, "only {total_aborts} forced aborts across 40 seeds");
}
