//! Tier-1 property tests over the model pipeline, driven by a small
//! in-tree generator instead of `proptest` (which this container can't
//! build — see `proptests.rs`, which stays behind the optional dep for
//! richer runs). The generator is seeded splitmix64; a failing case is
//! greedily shrunk (drop runs, drop keys, strip aborts) before the panic
//! reports the minimal counterexample, so failures are actionable.
//!
//! These are the model-build-determinism properties the roadmap wanted
//! in tier-1: identical Tseq input must yield a byte-identical encoded
//! TSA (and bit-identical guidance metric), the binary model format must
//! round-trip, and `StateKey` must canonicalize its abort multiset.

use gstm_core::prelude::*;
use gstm_core::{analyzer, model_io};

// ---------------------------------------------------------------------------
// Generator + shrinker (~100 LoC, no external crates)
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pair(&mut self) -> Pair {
        Pair::new(TxnId(self.below(4) as u16), ThreadId(self.below(8) as u16))
    }

    fn key(&mut self) -> StateKey {
        let aborts: Vec<Pair> = (0..self.below(4)).map(|_| self.pair()).collect();
        StateKey::new(aborts, self.pair())
    }

    fn runs(&mut self) -> Vec<Vec<StateKey>> {
        (0..1 + self.below(4))
            .map(|_| (0..1 + self.below(39)).map(|_| self.key()).collect())
            .collect()
    }
}

type Runs = Vec<Vec<StateKey>>;

/// Every one-step-smaller variant of `runs`: one run dropped, one key
/// dropped, or one key's aborts stripped.
fn shrink_candidates(runs: &Runs) -> Vec<Runs> {
    let mut out = Vec::new();
    for r in 0..runs.len() {
        if runs.len() > 1 {
            let mut c = runs.clone();
            c.remove(r);
            out.push(c);
        }
        for k in 0..runs[r].len() {
            if runs[r].len() > 1 {
                let mut c = runs.clone();
                c[r].remove(k);
                out.push(c);
            }
            if !runs[r][k].aborts().is_empty() {
                let mut c = runs.clone();
                c[r][k] = StateKey::solo(runs[r][k].commit());
                out.push(c);
            }
        }
    }
    out
}

/// Run `prop` over `cases` generated inputs; on failure, shrink greedily
/// to a local minimum and panic with the minimal counterexample.
fn check_runs(name: &str, cases: u64, prop: impl Fn(&Runs) -> Result<(), String>) {
    for seed in 0..cases {
        let mut failing = match prop(&Rng(seed).runs()) {
            Ok(()) => continue,
            Err(_) => Rng(seed).runs(),
        };
        'shrinking: loop {
            for cand in shrink_candidates(&failing) {
                if prop(&cand).is_err() {
                    failing = cand;
                    continue 'shrinking;
                }
            }
            break;
        }
        let err = prop(&failing).unwrap_err();
        panic!("{name}: seed {seed}, minimal counterexample {failing:?}: {err}");
    }
}

fn ensure(cond: bool, msg: impl Fn() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// Same Tseq in ⇒ byte-identical encoded TSA out, and bit-identical
/// guidance metric — the determinism the adaptive rebuild path (and the
/// analyzer's cross-checks) lean on.
#[test]
fn model_build_is_deterministic() {
    check_runs("model_build_is_deterministic", 200, |runs| {
        let (a, b) = (Tsa::from_runs(runs), Tsa::from_runs(&runs.clone()));
        ensure(model_io::encode(&a) == model_io::encode(&b), || {
            "two builds over the same Tseq encoded differently".into()
        })?;
        let cfg = GuidanceConfig::default();
        let ma = analyzer::analyze(&GuidedModel::build(a, &cfg));
        let mb = analyzer::analyze(&GuidedModel::build(b, &cfg));
        ensure(
            ma.guidance_metric_pct.to_bits() == mb.guidance_metric_pct.to_bits(),
            || {
                format!(
                    "guidance metric differs across identical builds: {} vs {}",
                    ma.guidance_metric_pct, mb.guidance_metric_pct
                )
            },
        )
    });
}

/// `model_io::encode` → `decode` preserves every state and every
/// outbound edge list.
#[test]
fn model_encoding_round_trips() {
    check_runs("model_encoding_round_trips", 200, |runs| {
        let tsa = Tsa::from_runs(runs);
        let back = model_io::decode(&model_io::encode(&tsa))
            .map_err(|e| format!("decode failed: {e:?}"))?;
        ensure(back.num_states() == tsa.num_states(), || {
            format!("states {} vs {}", back.num_states(), tsa.num_states())
        })?;
        ensure(back.num_edges() == tsa.num_edges(), || {
            format!("edges {} vs {}", back.num_edges(), tsa.num_edges())
        })?;
        for id in tsa.state_ids() {
            ensure(back.state(id) == tsa.state(id), || format!("state {id:?} differs"))?;
            ensure(back.outbound(id) == tsa.outbound(id), || {
                format!("outbound of {id:?} differs")
            })?;
        }
        Ok(())
    });
}

/// A `StateKey` is a canonical form: abort order must not matter, and
/// the canonical form must survive `from_sorted` reconstruction.
#[test]
fn state_key_canonicalizes_abort_order() {
    for seed in 0..500u64 {
        let mut rng = Rng(seed);
        let mut aborts: Vec<Pair> = (0..rng.below(6)).map(|_| rng.pair()).collect();
        let commit = rng.pair();
        let a = StateKey::new(aborts.clone(), commit);
        aborts.reverse();
        let b = StateKey::new(aborts, commit);
        assert_eq!(a, b, "seed {seed}: abort order leaked into the key");
        assert_eq!(a.hash64(), b.hash64(), "seed {seed}: hash differs for equal keys");
        let c = StateKey::from_sorted(a.aborts(), a.commit());
        assert_eq!(a, c, "seed {seed}: from_sorted round-trip differs");
    }
}

/// The shrinker itself must only propose strictly smaller inputs —
/// otherwise `check_runs` could loop forever on a failure.
#[test]
fn shrinker_strictly_shrinks() {
    let runs = Rng(42).runs();
    let size = |r: &Runs| -> usize {
        r.iter().flat_map(|run| run.iter().map(|k| 1 + k.aborts().len())).sum::<usize>()
            + r.len()
    };
    for cand in shrink_candidates(&runs) {
        assert!(size(&cand) < size(&runs), "candidate did not shrink");
    }
}
