//! Tier-1 property tests over the model pipeline, the Tseq parsers, and
//! the transactional containers — the whole former `proptests.rs` suite,
//! now driven by a small in-tree generator so it runs everywhere (the
//! `proptest` crate never built in this container, which left the suite
//! permanently skipped; it has been folded in here and deleted).
//!
//! The generator is the shared seeded splitmix64 (`gstm_core::rng`); a
//! failing runs-shaped case is greedily shrunk (drop runs, drop keys,
//! strip aborts) before the panic reports the minimal counterexample, so
//! failures are actionable.

use gstm_core::prelude::*;
use gstm_core::{analyzer, metrics, model_io};

// ---------------------------------------------------------------------------
// Generator + shrinker (~100 LoC, no external crates)
// ---------------------------------------------------------------------------

/// Domain generator over the shared splitmix64 stream (gstm_core::rng).
struct Rng(gstm_core::rng::SplitMix64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(gstm_core::rng::SplitMix64::new(seed))
    }

    fn next(&mut self) -> u64 {
        self.0.next()
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.below(n)
    }

    fn pair(&mut self) -> Pair {
        Pair::new(TxnId(self.below(4) as u16), ThreadId(self.below(8) as u16))
    }

    fn key(&mut self) -> StateKey {
        let aborts: Vec<Pair> = (0..self.below(4)).map(|_| self.pair()).collect();
        StateKey::new(aborts, self.pair())
    }

    fn runs(&mut self) -> Vec<Vec<StateKey>> {
        (0..1 + self.below(4))
            .map(|_| (0..1 + self.below(39)).map(|_| self.key()).collect())
            .collect()
    }
}

type Runs = Vec<Vec<StateKey>>;

/// Every one-step-smaller variant of `runs`: one run dropped, one key
/// dropped, or one key's aborts stripped.
fn shrink_candidates(runs: &Runs) -> Vec<Runs> {
    let mut out = Vec::new();
    for r in 0..runs.len() {
        if runs.len() > 1 {
            let mut c = runs.clone();
            c.remove(r);
            out.push(c);
        }
        for k in 0..runs[r].len() {
            if runs[r].len() > 1 {
                let mut c = runs.clone();
                c[r].remove(k);
                out.push(c);
            }
            if !runs[r][k].aborts().is_empty() {
                let mut c = runs.clone();
                c[r][k] = StateKey::solo(runs[r][k].commit());
                out.push(c);
            }
        }
    }
    out
}

/// Run `prop` over `cases` generated inputs; on failure, shrink greedily
/// to a local minimum and panic with the minimal counterexample.
fn check_runs(name: &str, cases: u64, prop: impl Fn(&Runs) -> Result<(), String>) {
    for seed in 0..cases {
        let mut failing = match prop(&Rng::new(seed).runs()) {
            Ok(()) => continue,
            Err(_) => Rng::new(seed).runs(),
        };
        'shrinking: loop {
            for cand in shrink_candidates(&failing) {
                if prop(&cand).is_err() {
                    failing = cand;
                    continue 'shrinking;
                }
            }
            break;
        }
        let err = prop(&failing).unwrap_err();
        panic!("{name}: seed {seed}, minimal counterexample {failing:?}: {err}");
    }
}

fn ensure(cond: bool, msg: impl Fn() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// Same Tseq in ⇒ byte-identical encoded TSA out, and bit-identical
/// guidance metric — the determinism the adaptive rebuild path (and the
/// analyzer's cross-checks) lean on.
#[test]
fn model_build_is_deterministic() {
    check_runs("model_build_is_deterministic", 200, |runs| {
        let (a, b) = (Tsa::from_runs(runs), Tsa::from_runs(&runs.clone()));
        ensure(model_io::encode(&a) == model_io::encode(&b), || {
            "two builds over the same Tseq encoded differently".into()
        })?;
        let cfg = GuidanceConfig::default();
        let ma = analyzer::analyze(&GuidedModel::build(a, &cfg));
        let mb = analyzer::analyze(&GuidedModel::build(b, &cfg));
        ensure(
            ma.guidance_metric_pct.to_bits() == mb.guidance_metric_pct.to_bits(),
            || {
                format!(
                    "guidance metric differs across identical builds: {} vs {}",
                    ma.guidance_metric_pct, mb.guidance_metric_pct
                )
            },
        )
    });
}

/// `model_io::encode` → `decode` preserves every state and every
/// outbound edge list.
#[test]
fn model_encoding_round_trips() {
    check_runs("model_encoding_round_trips", 200, |runs| {
        let tsa = Tsa::from_runs(runs);
        let back = model_io::decode(&model_io::encode(&tsa))
            .map_err(|e| format!("decode failed: {e:?}"))?;
        ensure(back.num_states() == tsa.num_states(), || {
            format!("states {} vs {}", back.num_states(), tsa.num_states())
        })?;
        ensure(back.num_edges() == tsa.num_edges(), || {
            format!("edges {} vs {}", back.num_edges(), tsa.num_edges())
        })?;
        for id in tsa.state_ids() {
            ensure(back.state(id) == tsa.state(id), || format!("state {id:?} differs"))?;
            ensure(back.outbound(id) == tsa.outbound(id), || {
                format!("outbound of {id:?} differs")
            })?;
        }
        Ok(())
    });
}

/// A `StateKey` is a canonical form: abort order must not matter, and
/// the canonical form must survive `from_sorted` reconstruction.
#[test]
fn state_key_canonicalizes_abort_order() {
    for seed in 0..500u64 {
        let mut rng = Rng::new(seed);
        let mut aborts: Vec<Pair> = (0..rng.below(6)).map(|_| rng.pair()).collect();
        let commit = rng.pair();
        let a = StateKey::new(aborts.clone(), commit);
        aborts.reverse();
        let b = StateKey::new(aborts, commit);
        assert_eq!(a, b, "seed {seed}: abort order leaked into the key");
        assert_eq!(a.hash64(), b.hash64(), "seed {seed}: hash differs for equal keys");
        let c = StateKey::from_sorted(a.aborts(), a.commit());
        assert_eq!(a, c, "seed {seed}: from_sorted round-trip differs");
    }
}

/// The shrinker itself must only propose strictly smaller inputs —
/// otherwise `check_runs` could loop forever on a failure.
#[test]
fn shrinker_strictly_shrinks() {
    let runs = Rng::new(42).runs();
    let size = |r: &Runs| -> usize {
        r.iter().flat_map(|run| run.iter().map(|k| 1 + k.aborts().len())).sum::<usize>()
            + r.len()
    };
    for cand in shrink_candidates(&runs) {
        assert!(size(&cand) < size(&runs), "candidate did not shrink");
    }
}

// ---------------------------------------------------------------------------
// Properties ported from the optional-dep proptest suite (the container
// cannot build `proptest`, so these now run in tier-1 on the in-tree
// generator; the old `proptests.rs` is gone).
// ---------------------------------------------------------------------------

/// Every non-terminal TSA state's outbound probabilities form a proper
/// distribution.
#[test]
fn tsa_probabilities_sum_to_one() {
    check_runs("tsa_probabilities_sum_to_one", 64, |runs| {
        let tsa = Tsa::from_runs(runs);
        for from in tsa.state_ids() {
            let total: f64 = tsa.state_ids().map(|to| tsa.probability(from, to)).sum();
            ensure(total.abs() < 1e-9 || (total - 1.0).abs() < 1e-9, || {
                format!("state {from:?} sums to {total}")
            })?;
        }
        Ok(())
    });
}

/// The guided model keeps a subset of destinations, never drops the
/// top-probability edge, and always allows the pairs of the P_h state.
#[test]
fn guided_model_keeps_subset_and_always_keeps_top_edge() {
    check_runs("guided_model_keeps_subset", 64, |runs| {
        // Sweep Tfactor deterministically per input instead of drawing it.
        for tf in [1.0, 2.5, 4.0, 9.5] {
            let tsa = Tsa::from_runs(runs);
            let model = GuidedModel::build(tsa, &GuidanceConfig::with_tfactor(tf));
            for id in model.tsa().state_ids() {
                let (all, kept) = model.dest_counts(id);
                ensure(kept <= all, || format!("tf {tf}: kept {kept} > all {all}"))?;
                if all > 0 {
                    ensure(kept >= 1, || format!("tf {tf}: P_h edge dropped at {id:?}"))?;
                    let top = model.tsa().outbound(id)[0].0;
                    for p in model.tsa().state(top).pairs() {
                        ensure(model.is_allowed(id, p), || {
                            format!("tf {tf}: top destination pair {p:?} disallowed at {id:?}")
                        })?;
                    }
                }
            }
        }
        Ok(())
    });
}

/// The guidance metric is a percentage and grows (weakly) with Tfactor —
/// a looser threshold keeps at least as many destinations.
#[test]
fn analyzer_metric_is_bounded_and_monotone_in_tfactor() {
    check_runs("analyzer_metric_monotone", 64, |runs| {
        let tsa = Tsa::from_runs(runs);
        let mut last = 0.0f64;
        for tf in [1.0, 2.0, 4.0, 8.0] {
            let cfg = GuidanceConfig::with_tfactor(tf);
            let model = GuidedModel::build(tsa.clone(), &cfg);
            let rep = analyzer::analyze_with(&model, &cfg);
            ensure((0.0..=100.0 + 1e-9).contains(&rep.guidance_metric_pct), || {
                format!("tf {tf}: metric {} out of range", rep.guidance_metric_pct)
            })?;
            ensure(rep.guidance_metric_pct + 1e-9 >= last, || {
                format!("tf {tf}: metric {} < {last}", rep.guidance_metric_pct)
            })?;
            last = rep.guidance_metric_pct;
        }
        Ok(())
    });
}

/// `metrics::non_determinism` counts distinct states — and matches the
/// TSA the same runs build.
#[test]
fn non_determinism_counts_distinct_states() {
    check_runs("non_determinism_counts_distinct_states", 64, |runs| {
        let nd = metrics::non_determinism(runs);
        let set: std::collections::HashSet<_> =
            runs.iter().flat_map(|run| run.iter().cloned()).collect();
        ensure(nd == set.len(), || format!("nd {nd} != distinct {}", set.len()))?;
        let tsa = Tsa::from_runs(runs);
        ensure(nd == tsa.num_states(), || {
            format!("nd {nd} != tsa states {}", tsa.num_states())
        })
    });
}

/// Histogram totals are consistent with the recorded samples, and the
/// tail metric ignores repeats of already-seen abort counts.
#[test]
fn histogram_totals_are_consistent() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed ^ 0x4157);
        let samples: Vec<u32> =
            (0..1 + rng.below(199)).map(|_| rng.below(50) as u32).collect();
        let mut h = AbortHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.total_commits(), samples.len() as u64, "seed {seed}");
        assert_eq!(
            h.total_aborts(),
            samples.iter().map(|&s| s as u64).sum::<u64>(),
            "seed {seed}"
        );
        assert_eq!(h.max_aborts(), samples.iter().copied().max().unwrap(), "seed {seed}");
        let before = h.tail_metric();
        let mut h2 = h.clone();
        h2.record(*samples.first().unwrap());
        assert_eq!(h2.tail_metric(), before, "seed {seed}: tail moved on a repeat");
    }
}

/// Standard deviation is translation-invariant and scales linearly.
#[test]
fn std_dev_is_translation_invariant_and_scales() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed ^ 0x57dd);
        let signed = |r: &mut Rng| (r.below(2_000_001) as f64 - 1e6) / 1e3; // -1e3..=1e3
        let xs: Vec<f64> = (0..2 + rng.below(48)).map(|_| signed(&mut rng)).collect();
        let shift = signed(&mut rng) / 10.0;
        let sd = metrics::std_dev(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        assert!(
            (metrics::std_dev(&shifted) - sd).abs() < 1e-6,
            "seed {seed}: shift moved std-dev"
        );
        let scaled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        assert!(
            (metrics::std_dev(&scaled) - 2.0 * sd).abs() < 1e-6,
            "seed {seed}: scaling is not linear"
        );
    }
}

// ---------------------------------------------------------------------------
// Tseq causal-parse properties
// ---------------------------------------------------------------------------

mod tseq_props {
    use super::Rng;
    use gstm_core::events::{AbortCause, TxEvent};
    use gstm_core::prelude::*;
    use gstm_core::tseq::parse_causal;
    use gstm_core::tss::parse_tseq;

    fn event(rng: &mut Rng) -> TxEvent {
        let pair = rng.pair();
        match rng.below(4) {
            0 => TxEvent::Begin(pair),
            1 => TxEvent::Commit(pair, 0),
            _ => {
                let cause = match rng.below(4) {
                    0 => AbortCause::ReadVersion,
                    1 => AbortCause::Validation,
                    2 => AbortCause::Explicit,
                    _ => AbortCause::ReadLocked { owner: Some(ThreadId(rng.below(8) as u16)) },
                };
                TxEvent::Abort(pair, cause)
            }
        }
    }

    fn events(seed: u64) -> Vec<TxEvent> {
        let mut rng = Rng::new(seed ^ 0xca5a1);
        (0..rng.below(120)).map(|_| event(&mut rng)).collect()
    }

    #[test]
    fn causal_parse_emits_one_state_per_commit_in_order() {
        for seed in 0..64u64 {
            let events = events(seed);
            let commit_pairs: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    TxEvent::Commit(p, _) => Some(*p),
                    _ => None,
                })
                .collect();
            let tseq = parse_causal(&events);
            assert_eq!(tseq.len(), commit_pairs.len(), "seed {seed}");
            let tseq_commits: Vec<_> = tseq.iter().map(|s| s.commit()).collect();
            assert_eq!(tseq_commits, commit_pairs, "seed {seed}: commit order changed");
        }
    }

    #[test]
    fn causal_attributes_each_abort_at_most_once() {
        for seed in 0..64u64 {
            let events = events(seed);
            let aborts = events.iter().filter(|e| matches!(e, TxEvent::Abort(..))).count();
            let attributed: usize =
                parse_causal(&events).iter().map(|s| s.aborts().len()).sum();
            // Canonicalization dedups identical pairs inside one window,
            // so attributed <= aborts always holds.
            assert!(attributed <= aborts, "seed {seed}: {attributed} > {aborts}");
        }
    }

    #[test]
    fn windowed_parse_never_drops_commits() {
        for seed in 0..64u64 {
            let events = events(seed);
            let commits =
                events.iter().filter(|e| matches!(e, TxEvent::Commit(..))).count();
            assert_eq!(parse_tseq(&events).len(), commits, "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------------
// Transactional containers vs. BTreeMap
// ---------------------------------------------------------------------------

mod container_props {
    use super::Rng;
    use gstm_core::TxnId;
    use gstm_structs::{THashMap, TList, TMap};
    use gstm_tl2::{Stm, StmConfig};
    use std::collections::BTreeMap;

    #[derive(Clone, Copy, Debug)]
    enum Op {
        Insert(u64, u64),
        Remove(u64),
        Get(u64),
        Upsert(u64, u64),
    }

    fn ops(seed: u64, max: u64) -> Vec<Op> {
        let mut rng = Rng::new(seed ^ 0xc0117a1e);
        (0..1 + rng.below(max))
            .map(|_| match rng.below(4) {
                0 => Op::Insert(rng.below(40), rng.next()),
                1 => Op::Remove(rng.below(40)),
                2 => Op::Get(rng.below(40)),
                _ => Op::Upsert(rng.below(40), rng.next()),
            })
            .collect()
    }

    /// What the container answered for one op.
    enum Answer {
        Did(bool),
        Got(Option<u64>),
    }

    /// Drive `ops` through a container (via the single `run` adapter —
    /// one closure so it can own the `&mut ctx`) and the BTreeMap oracle.
    fn check_against_model(
        seed: u64,
        ops: &[Op],
        mut run: impl FnMut(Op) -> Answer,
    ) -> BTreeMap<u64, u64> {
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match (*op, run(*op)) {
                (Op::Insert(k, v), Answer::Did(did)) => {
                    assert_eq!(did, !model.contains_key(&k), "seed {seed} {op:?}");
                    model.entry(k).or_insert(v);
                }
                (Op::Remove(k), Answer::Got(got)) => {
                    assert_eq!(got, model.remove(&k), "seed {seed} {op:?}");
                }
                (Op::Get(k), Answer::Got(got)) => {
                    assert_eq!(got, model.get(&k).copied(), "seed {seed} {op:?}");
                }
                (Op::Upsert(k, v), Answer::Got(old)) => {
                    assert_eq!(old, model.insert(k, v), "seed {seed} {op:?}");
                }
                _ => panic!("adapter answered the wrong shape for {op:?}"),
            }
        }
        model
    }

    #[test]
    fn tmap_matches_btreemap() {
        for seed in 0..32u64 {
            let stm = Stm::new(StmConfig::default());
            let mut ctx = stm.register();
            let map: TMap<u64> = TMap::new();
            let ops = ops(seed, 149);
            let model = check_against_model(seed, &ops, |op| match op {
                Op::Insert(k, v) => {
                    Answer::Did(ctx.atomically(TxnId(0), |tx| map.insert(tx, k, v)))
                }
                Op::Remove(k) => Answer::Got(ctx.atomically(TxnId(0), |tx| map.remove(tx, k))),
                Op::Get(k) => Answer::Got(ctx.atomically(TxnId(0), |tx| map.get(tx, k))),
                Op::Upsert(k, v) => {
                    Answer::Got(ctx.atomically(TxnId(0), |tx| map.upsert(tx, k, v)))
                }
            });
            let snap = ctx.atomically(TxnId(0), |tx| map.snapshot(tx));
            assert_eq!(snap, model.into_iter().collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn tlist_matches_btreemap() {
        for seed in 0..32u64 {
            let stm = Stm::new(StmConfig::default());
            let mut ctx = stm.register();
            let list: TList<u64> = TList::new();
            let ops = ops(seed, 99);
            let model = check_against_model(seed, &ops, |op| match op {
                Op::Insert(k, v) => {
                    Answer::Did(ctx.atomically(TxnId(0), |tx| list.insert(tx, k, v)))
                }
                Op::Remove(k) => Answer::Got(ctx.atomically(TxnId(0), |tx| list.remove(tx, k))),
                Op::Get(k) => Answer::Got(ctx.atomically(TxnId(0), |tx| list.get(tx, k))),
                Op::Upsert(k, v) => {
                    Answer::Got(ctx.atomically(TxnId(0), |tx| list.upsert(tx, k, v)))
                }
            });
            let snap = ctx.atomically(TxnId(0), |tx| list.snapshot(tx));
            assert_eq!(snap, model.into_iter().collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn thashmap_matches_model() {
        for seed in 0..32u64 {
            let stm = Stm::new(StmConfig::default());
            let mut ctx = stm.register();
            let buckets = 1 + (seed as usize % 15);
            let map: THashMap<u64> = THashMap::new(buckets);
            let ops = ops(seed, 99);
            let model = check_against_model(seed, &ops, |op| match op {
                Op::Insert(k, v) => {
                    Answer::Did(ctx.atomically(TxnId(0), |tx| map.insert(tx, k, v)))
                }
                Op::Remove(k) => Answer::Got(ctx.atomically(TxnId(0), |tx| map.remove(tx, k))),
                Op::Get(k) => Answer::Got(ctx.atomically(TxnId(0), |tx| map.get(tx, k))),
                Op::Upsert(k, v) => {
                    Answer::Got(ctx.atomically(TxnId(0), |tx| map.upsert(tx, k, v)))
                }
            });
            let len = ctx.atomically(TxnId(0), |tx| map.len(tx));
            assert_eq!(len as usize, model.len(), "seed {seed}");
        }
    }
}
