//! End-to-end tests for the model checker (`gstm_core::mck`): the
//! acceptance configuration is explored exhaustively and clean, every
//! mutation site is caught with a bit-identically replayable
//! counterexample, and — the part that makes the abstract machine worth
//! trusting — a **conformance bridge** drives the machine and the real
//! `GuidedHook` through the same op schedules and demands identical
//! observable behavior (gate counters, recorded Tseq, swap count, epoch
//! generation, and the packed current word after every single op).
//!
//! The bridge runs with the breaker disabled on both sides: the real
//! adaptive hook attaches a drift tracker whose `Fresh` verdict suppresses
//! trips, which the verdict-less machine deliberately does not model
//! (the machine's breaker is lock-stepped against the real `Breaker`
//! directly in the unit tier instead).

use gstm_core::mck::{
    explore, Counterexample, ExploreOptions, MachineState, MckConfig, Mutation,
};
use gstm_core::prelude::*;
use gstm_core::rng::SplitMix64;

// ---------------------------------------------------------------------------
// Exhaustive trunk + mutation teeth
// ---------------------------------------------------------------------------

/// The acceptance configuration — 3 threads × 2 windows, breaker on,
/// hot-swap on, one scripted abort — is explored exhaustively: zero
/// violations, no truncation, and a large measured POR reduction.
#[test]
fn acceptance_configuration_is_exhaustively_clean() {
    let cfg = MckConfig::ci();
    let r = explore(&cfg, ExploreOptions::default());
    assert!(r.violation.is_none(), "trunk violation: {:?}", r.violation);
    assert!(!r.truncated, "search truncated at {} states", r.states);
    assert!(r.states > 100_000, "suspiciously small space: {} states", r.states);
    let naive = r.naive_interleavings.expect("naive pass ran");
    assert!(
        naive / 1000 >= r.transitions as u128,
        "POR reduction should be >1000x here: naive {naive}, reduced {}",
        r.transitions
    );
    assert!(r.persistent_hits > 0 && r.sleep_skips > 0, "both reductions fire");
}

/// Every mutation site must produce a violation of its documented kind,
/// and the captured counterexample must survive serialize → parse →
/// replay twice with the same trace fingerprint.
#[test]
fn every_mutation_site_is_caught_with_a_replayable_counterexample() {
    use gstm_core::mck::ViolationKind::*;
    let expected = [
        (Mutation::SkipReleaseRecheck, ReleasedWhileAllowed),
        (Mutation::NoRelease, GateUnbounded),
        (Mutation::TwoRungClose, IllegalBreakerTransition),
        (Mutation::ProbeNoJudge, HalfOpenStuck),
        (Mutation::TornRetag, TornEpochTag),
    ];
    for (m, kind) in expected {
        let cfg = MckConfig { mutation: Some(m), ..MckConfig::ci() };
        let opts = ExploreOptions { count_naive: false, ..ExploreOptions::default() };
        let r = explore(&cfg, opts);
        let (schedule, v) = r.violation.unwrap_or_else(|| panic!("{m}: not caught"));
        assert_eq!(v.kind, kind, "{m}: wrong violation kind");
        let ce = Counterexample::capture(&cfg, schedule, v).expect("captures");
        let text = ce.to_text();
        let parsed = Counterexample::parse(&text).unwrap_or_else(|e| panic!("{m}: {e}"));
        let a = parsed.verify().unwrap_or_else(|e| panic!("{m}: first replay: {e}"));
        let b = parsed.verify().unwrap_or_else(|e| panic!("{m}: second replay: {e}"));
        assert_eq!(a.fingerprint, b.fingerprint, "{m}: replays disagree");
        assert_eq!(a.fingerprint, ce.fingerprint, "{m}: capture disagrees");
    }
}

// ---------------------------------------------------------------------------
// Deterministic "final retry races the hot-swap" corner
// ---------------------------------------------------------------------------

/// The interleaving the real-time suites can only hit by luck, pinned as
/// an explicit machine schedule: thread 0 is gated (disallowed) with its
/// final re-examination still pending; a hot-swap publishes epoch 1 and a
/// competing commit re-tags the current word with it. The final retry
/// must observe the new tag (epoch mismatch ⇒ allowed) and resolve
/// **Waited**, not Released.
#[test]
fn final_retry_racing_a_hot_swap_waits_instead_of_releasing() {
    let cfg = MckConfig {
        threads: 2,
        windows: 2,
        abort_mask: 0,
        breaker: None,
        ..MckConfig::ci()
    };
    let mut m = MachineState::initial(&cfg);
    // t0 commits window 0: the word now allows only t1.
    assert!(m.run_op(0, 64).is_none());
    assert!(m.run_op(0, 64).is_none());
    assert!(m.at_gate(0));
    // t0 enters its window-1 gate (pins epoch 0) and burns the non-final
    // check: disallowed, so it waits with one examination left.
    let eff = m.step(0); // GateEntry
    m = eff.state;
    let eff = m.step(0); // non-final GateCheck: disallowed, waits
    m = eff.state;
    assert_eq!(m.passed + m.waited + m.released, m.gate_calls - 1, "gate unresolved");
    // The race: the manager swaps (epoch 1 published), then t1 gates and
    // commits window 0, re-tagging the current word with epoch 1.
    assert!(m.run_op(cfg.manager_agent().unwrap(), 64).is_none());
    assert_eq!(m.generation(), 1);
    assert!(m.run_op(1, 64).is_none()); // t1 gate (allowed by the old word)
    assert!(m.run_op(1, 64).is_none()); // t1 commit: word now tagged epoch 1
    assert_eq!(m.current_tag().0, 1, "commit re-tagged the word");
    // t0's final re-examination: pinned epoch 0, word tagged epoch 1 —
    // the mismatch means the model verdict is void, so the gate opens.
    let (waited, released) = (m.waited, m.released);
    let eff = m.step(0);
    assert!(eff.violation.is_none(), "{:?}", eff.violation);
    m = eff.state;
    assert!(m.at_commit(0), "t0 proceeded to its commit");
    assert_eq!(m.waited, waited + 1, "the rescued gate counts as Waited");
    assert_eq!(m.released, released, "no release: the swap rescued the final retry");
}

/// The same schedule without the rescue: nobody moves the word, so the
/// final re-examination must give up and count Released — exactly once.
#[test]
fn final_retry_without_the_swap_releases_exactly_once() {
    let cfg = MckConfig {
        threads: 2,
        windows: 2,
        abort_mask: 0,
        breaker: None,
        ..MckConfig::ci()
    };
    let mut m = MachineState::initial(&cfg);
    assert!(m.run_op(0, 64).is_none());
    assert!(m.run_op(0, 64).is_none());
    let released_before = m.released;
    assert!(m.run_op(0, 64).is_none(), "k-retry release must terminate the gate");
    assert_eq!(m.released, released_before + 1, "released exactly once");
    assert!(m.at_commit(0), "a released thread proceeds");
}

// ---------------------------------------------------------------------------
// Conformance bridge: abstract machine vs. real GuidedHook
// ---------------------------------------------------------------------------

/// Mirror of the real hook driven op-by-op next to the machine.
fn hook_for(cfg: &MckConfig) -> std::sync::Arc<GuidedHook> {
    let gcfg = GuidanceConfig {
        tfactor: cfg.tfactor,
        k_retries: cfg.k_retries,
        wait_spins: 2,
        ..GuidanceConfig::default()
    };
    let adapt = AdaptConfig {
        window: 4096, // never evicts: the machine records full history
        min_window: 1,
        background: false,
        ..AdaptConfig::default()
    };
    GuidedHook::adaptive(cfg.seed_model(), gcfg, adapt, None)
}

/// Drive machine and hook through the same seeded op schedule and demand
/// identical observables after every op. Returns ops executed.
fn conformance_run(cfg: &MckConfig, seed: u64) -> u32 {
    let mut m = MachineState::initial(cfg);
    let hook = hook_for(cfg);
    let mgr = hook.manager().expect("adaptive hook").clone();
    let mut rng = SplitMix64::new(seed);
    let mut windows = vec![0u16; cfg.threads as usize];
    let mut ops = 0u32;
    loop {
        let enabled = m.enabled_agents();
        if enabled.is_empty() {
            break;
        }
        let agent = enabled[rng.below(enabled.len() as u64) as usize];
        if Some(agent) == cfg.manager_agent() {
            assert!(m.run_op(agent, 64).is_none());
            let before = mgr.epoch_id();
            let id = mgr
                .regenerate_from(&hook, DriftVerdict::Drifting)
                .expect("machine swapped, so the real window is non-empty");
            assert_eq!(id, before.wrapping_add(1));
        } else {
            let t = agent as usize;
            let who = cfg.who(agent, windows[t]);
            let was_abort = m.at_abort(agent);
            let was_gate = m.at_gate(agent);
            assert!(m.run_op(agent, 64).is_none(), "trunk op hit a violation");
            if was_gate {
                hook.gate(who);
            } else if was_abort {
                hook.on_abort(who, AbortCause::Validation);
            } else {
                hook.on_commit(who);
                windows[t] += 1;
            }
        }
        ops += 1;
        // The packed current word is the protocol's whole shared state:
        // byte-equality after every op means both sides classified the
        // same commit against the same epoch's model and resolved every
        // gate identically.
        assert_eq!(
            m.current_tag(),
            hook.current_tag(),
            "seed {seed}: current word diverged after op {ops} (agent {agent})"
        );
        assert_eq!(m.generation(), mgr.epoch_id(), "seed {seed}: epoch id diverged");
    }
    let stats = hook.stats();
    assert_eq!(
        (m.passed, m.waited, m.released),
        (stats.passed, stats.waited, stats.released),
        "seed {seed}: gate counters diverged"
    );
    assert_eq!(m.swaps_done() as u64, mgr.swaps(), "seed {seed}: swap count diverged");
    assert_eq!(m.recorded(), &hook.take_run()[..], "seed {seed}: recorded Tseq diverged");
    ops
}

/// The machine is only as good as its fidelity to the implementation:
/// across many seeded schedules and several geometries (aborts on and
/// off, hot-swap on and off), every op-level observable matches the real
/// `GuidedHook` exactly.
#[test]
fn machine_conforms_to_the_real_hook_op_for_op() {
    let geometries = [
        MckConfig { breaker: None, ..MckConfig::ci() },
        MckConfig { breaker: None, abort_mask: 0, ..MckConfig::ci() },
        MckConfig { breaker: None, threads: 2, windows: 3, abort_mask: 0b10, ..MckConfig::ci() },
        MckConfig { breaker: None, swaps: 0, ..MckConfig::ci() },
        MckConfig { breaker: None, threads: 4, windows: 2, k_retries: 2, ..MckConfig::ci() },
    ];
    let mut total_ops = 0u32;
    for (g, cfg) in geometries.iter().enumerate() {
        cfg.validate().unwrap_or_else(|e| panic!("geometry {g}: {e}"));
        for seed in 0..40u64 {
            total_ops += conformance_run(cfg, seed * 31 + g as u64);
        }
    }
    assert!(total_ops > 2000, "bridge barely ran: {total_ops} ops");
}
