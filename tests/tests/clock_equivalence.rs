//! Sharded-clock serializable equivalence (the `--clock` satellite).
//!
//! The GV5-style sharded commit clock changes *how* write versions are
//! minted — `(epoch << SHARD_BITS) | shard` off per-committer shard words
//! instead of one global CAS — but must not change *what* commits. These
//! suites pit `--clock=sharded` against `--clock=global` across hundreds
//! of seeded schedules and demand identical committed outcomes:
//!
//! * **intruder** — its checksum (`completed·10⁶ + attacks`) is
//!   schedule-invariant by construction, so any lost, duplicated, or
//!   corrupted commit under the sharded clock flips it.
//! * **kmeans** — its commit count is a pure function of the input
//!   (every point assignment and every per-thread center merge commits
//!   exactly once per iteration), so the two modes must agree exactly.
//! * a raw TL2 **counter hammer** — concurrent increments on shared
//!   `TVar`s where the final committed values must equal the number of
//!   successful commits: the direct zero-lost-commits witness.
//!
//! Schedule diversity comes from the input seed plus TL2's yield
//! injection; every repetition re-registers threads onto fresh shard
//! assignments.

use gstm_stamp::{by_name, InputSize, RunConfig};
use gstm_tl2::{ClockMode, StmBuilder, StmConfig, TVar};
use std::sync::Arc;

/// Seeded schedules per benchmark and mode.
const SEEDS: u64 = 200;

fn run_bench(bench: &str, mode: ClockMode, seed: u64) -> (u64, u64) {
    let b = by_name(bench).expect("benchmark exists");
    let stm = StmBuilder::new(StmConfig::with_yield_injection(2))
        .clock(mode)
        .build();
    let r = b.run(
        &stm,
        &RunConfig {
            threads: 2,
            size: InputSize::Small,
            seed,
        },
    );
    let commits: u64 = r
        .per_thread_stats
        .iter()
        .map(|s| s.abort_hist.total_commits())
        .sum();
    (r.checksum, commits)
}

#[test]
fn intruder_checksum_is_identical_across_clock_modes() {
    for seed in 0..SEEDS {
        let (global_sum, global_commits) = run_bench("intruder", ClockMode::Global, seed);
        let (sharded_sum, sharded_commits) = run_bench("intruder", ClockMode::Sharded, seed);
        assert_eq!(
            sharded_sum, global_sum,
            "seed {seed}: sharded intruder diverged (completed/attacks differ)"
        );
        assert!(
            global_sum / 1_000_000 > 0,
            "seed {seed}: no flows completed — vacuous comparison"
        );
        // Retries differ between modes (different conflict windows), but
        // successful commits may not: every flow commits the same txns.
        assert_eq!(
            sharded_commits, global_commits,
            "seed {seed}: intruder lost or duplicated commits"
        );
    }
}

#[test]
fn kmeans_commit_count_is_identical_across_clock_modes() {
    for seed in 0..SEEDS {
        let (_, global_commits) = run_bench("kmeans", ClockMode::Global, seed);
        let (_, sharded_commits) = run_bench("kmeans", ClockMode::Sharded, seed);
        assert_eq!(
            sharded_commits, global_commits,
            "seed {seed}: kmeans commit totals diverged between clock modes"
        );
        // Small preset: 512 points × 3 iterations assign at least once
        // each — a floor that catches a silently truncated run.
        assert!(
            global_commits >= 512 * 3,
            "seed {seed}: implausibly few commits ({global_commits})"
        );
    }
}

#[test]
fn sharded_counter_increments_lose_no_commits() {
    // 4 threads × 1000 increments over 4 shared counters: the committed
    // values must sum to exactly the number of increment transactions.
    // This is serializability observed directly in committed state, not
    // via a checksum proxy.
    const THREADS: u16 = 4;
    const INCREMENTS: u64 = 1000;
    for round in 0..8u64 {
        let stm = StmBuilder::new(StmConfig::with_yield_injection(2))
            .clock(ClockMode::Sharded)
            .build();
        let counters: Arc<Vec<TVar<u64>>> = Arc::new((0..4).map(|_| TVar::new(0)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stm = stm.clone();
                let counters = counters.clone();
                std::thread::spawn(move || {
                    let mut ctx = stm.register();
                    for i in 0..INCREMENTS {
                        // Mix the target so threads collide across shards.
                        let k = ((t as u64 + i + round) % 4) as usize;
                        ctx.atomically(gstm_core::TxnId(0), |tx| {
                            let v = tx.read(&counters[k])?;
                            tx.write(&counters[k], v + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = counters.iter().map(TVar::load_quiesced).sum();
        assert_eq!(
            total,
            THREADS as u64 * INCREMENTS,
            "round {round}: committed values lost increments"
        );
        assert_eq!(stm.total_commits(), THREADS as u64 * INCREMENTS);
    }
}
