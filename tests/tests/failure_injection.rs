//! Failure injection: a panicking transaction body must never wedge the
//! STM — no lock may stay held, no reader registration may leak — and
//! other threads must keep committing.

use gstm_core::{ThreadId, TxnId};
use gstm_libtm::{DetectionMode, LibTm, LibTmConfig, Resolution, TObject};
use gstm_tl2::{Stm, StmConfig, TVar};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

#[test]
fn tl2_panicking_body_leaves_no_locks() {
    let stm = Stm::new(StmConfig::default());
    let v = TVar::new(7u32);
    let mut ctx = stm.register_as(ThreadId(0));
    let result = catch_unwind(AssertUnwindSafe(|| {
        ctx.atomically(TxnId(0), |tx| {
            tx.write(&v, 99)?;
            panic!("injected failure");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    assert!(result.is_err(), "panic propagates");
    // TL2 only locks at commit, so the location must be untouched and
    // freely usable afterwards.
    assert_eq!(v.load_quiesced(), 7, "buffered write discarded");
    let mut ctx2 = stm.register_as(ThreadId(1));
    ctx2.atomically(TxnId(1), |tx| tx.modify(&v, |x| x + 1));
    assert_eq!(v.load_quiesced(), 8);
}

#[test]
fn libtm_panicking_body_releases_encounter_locks() {
    // Pessimistic-write mode takes writer locks *during the body*; the
    // transaction's Drop must release them even on panic.
    for detection in [
        DetectionMode::FullyPessimistic,
        DetectionMode::PessimisticRead,
        DetectionMode::PessimisticWrite,
        DetectionMode::FullyOptimistic,
    ] {
        let tm = LibTm::new(LibTmConfig {
            detection,
            resolution: Resolution::AbortReaders,
            ..LibTmConfig::default()
        });
        let v = TObject::new(7u32);
        let mut ctx = tm.register_as(ThreadId(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            ctx.atomically(TxnId(0), |tx| {
                let _ = tx.read(&v)?;
                tx.write(&v, 99)?;
                panic!("injected failure");
                #[allow(unreachable_code)]
                Ok(())
            })
        }));
        assert!(result.is_err());
        assert_eq!(v.load_quiesced(), 7, "{detection:?}: write leaked");
        // Another thread must be able to lock and commit immediately —
        // a leaked writer lock or reader registration would block it
        // (WaitForReaders) or abort it forever.
        let mut ctx2 = tm.register_as(ThreadId(1));
        ctx2.atomically(TxnId(1), |tx| tx.modify(&v, |x| x + 1));
        assert_eq!(v.load_quiesced(), 8, "{detection:?}: STM wedged");
    }
}

#[test]
fn tl2_survives_a_crashing_worker_among_live_ones() {
    let stm = Stm::new(StmConfig::with_yield_injection(3));
    let v = TVar::new(0u64);
    std::thread::scope(|s| {
        // A worker that panics mid-transaction.
        let stm_c = Arc::clone(&stm);
        let v_c = v.clone();
        let crasher = s.spawn(move || {
            let mut ctx = stm_c.register_as(ThreadId(0));
            let _ = catch_unwind(AssertUnwindSafe(|| {
                ctx.atomically(TxnId(0), |tx| {
                    tx.write(&v_c, u64::MAX)?;
                    panic!("boom");
                    #[allow(unreachable_code)]
                    Ok(())
                })
            }));
        });
        // Healthy workers.
        for t in 1..4u16 {
            let stm = Arc::clone(&stm);
            let v = v.clone();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                for _ in 0..200 {
                    ctx.atomically(TxnId(1), |tx| tx.modify(&v, |x| x + 1));
                }
            });
        }
        crasher.join().unwrap();
    });
    assert_eq!(v.load_quiesced(), 600, "healthy workers unaffected");
}

#[test]
fn explicit_retry_storm_does_not_starve_commits() {
    // Threads that explicitly retry on a predicate make progress as soon
    // as the predicate flips, even under heavy conflict.
    let stm = Stm::new(StmConfig::with_yield_injection(3));
    let gatevar = TVar::new(false);
    let hits = TVar::new(0u32);
    std::thread::scope(|s| {
        for t in 0..3u16 {
            let stm = Arc::clone(&stm);
            let gatevar = gatevar.clone();
            let hits = hits.clone();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                ctx.atomically(TxnId(0), |tx| {
                    if !tx.read(&gatevar)? {
                        return Err(tx.retry());
                    }
                    tx.modify(&hits, |h| h + 1)
                });
            });
        }
        let stm_o = Arc::clone(&stm);
        let gate_o = gatevar.clone();
        s.spawn(move || {
            std::thread::yield_now();
            let mut ctx = stm_o.register_as(ThreadId(3));
            ctx.atomically(TxnId(1), |tx| tx.write(&gate_o, true));
        });
    });
    assert_eq!(hits.load_quiesced(), 3);
}
