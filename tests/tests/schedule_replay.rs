//! Deterministic schedule-replay stress harness for the adaptive guided
//! hook (online model regeneration + lock-free hot-swap).
//!
//! A seeded splitmix64 PRNG drives N *logical* threads through the
//! gate/abort/commit protocol on a single OS thread, with model hot-swaps
//! fired at PRNG-scripted step boundaries (`background: false`, so no
//! guardian thread races the script). Because the interleaving is a pure
//! function of the seed, every run can assert:
//!
//! * **gate-outcome partition**: every gate call resolves to exactly one
//!   of passed/waited/released, so the three counters sum to the call
//!   count;
//! * **epoch-tag integrity**: the `(epoch, state)` tag of the current
//!   word always names a state id valid *in that epoch's model* — a
//!   thread that classified a commit against one model but tagged it
//!   with another epoch (a torn old/new mix) would violate this;
//! * **replay determinism**: the same seed reproduces the same recorded
//!   Tseq, the same gate counters, the same swap schedule, and
//!   bit-identical per-epoch guidance metrics.
//!
//! A final test hammers real concurrency: worker threads gate/commit
//! while the driver hot-swaps freshly built models, then the epoch tag is
//! validated against the full epoch history.

use gstm_core::analyzer;
use gstm_core::prelude::*;
use std::sync::Arc;

// Seeded PRNG: the shared splitmix64 stream (gstm_core::rng), so this
// suite, chaos_replay, quickprops, and the model checker all replay from
// the exact same generator.
use gstm_core::rng::SplitMix64 as Rng;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

const THREADS: u16 = 4;
const TXNS: u16 = 3;
const STEPS: usize = 120;

fn p(txn: u16, thread: u16) -> Pair {
    Pair::new(TxnId(txn), ThreadId(thread))
}

/// A deterministic training sequence over the same pair alphabet the
/// replay uses, so the initial model gates real states.
fn seed_model(cfg: &GuidanceConfig) -> Arc<GuidedModel> {
    let mut rng = Rng::new(0xfeed);
    let run: Vec<StateKey> = (0..96)
        .map(|_| {
            let commit = p(rng.below(TXNS as u64) as u16, rng.below(THREADS as u64) as u16);
            if rng.below(3) == 0 {
                let abort =
                    p(rng.below(TXNS as u64) as u16, rng.below(THREADS as u64) as u16);
                StateKey::new(vec![abort], commit)
            } else {
                StateKey::solo(commit)
            }
        })
        .collect();
    Arc::new(GuidedModel::build(Tsa::from_runs(&[run]), cfg))
}

fn replay_config() -> GuidanceConfig {
    // Short gate budget: a disallowed pair on a single OS thread can only
    // be released by exhausting the retries (nobody else will move the
    // state), so keep the spin loop small.
    GuidanceConfig { k_retries: 2, wait_spins: 4, ..GuidanceConfig::default() }
}

fn adapt_config() -> AdaptConfig {
    AdaptConfig { window: 64, min_window: 1, background: false, ..AdaptConfig::default() }
}

/// Everything one replay produces that a re-run with the same seed must
/// reproduce exactly.
#[derive(Debug, PartialEq)]
struct ReplayOutcome {
    tseq: Vec<StateKey>,
    passed: u64,
    waited: u64,
    released: u64,
    gate_calls: u64,
    swaps: u64,
    /// `guidance_metric_pct.to_bits()` of the model built from the live
    /// window at every swap point plus the final window (one entry per
    /// epoch that accumulated any window).
    epoch_metric_bits: Vec<u64>,
}

/// Drive one seeded interleaving and check the per-step invariants.
fn replay(seed: u64) -> ReplayOutcome {
    let cfg = replay_config();
    let hook = GuidedHook::adaptive(seed_model(&cfg), cfg, adapt_config(), None);
    let mgr = hook.manager().expect("adaptive hook has a manager").clone();
    // Epoch history: index = epoch id, value = that epoch's model.
    let mut models: Vec<Arc<GuidedModel>> = vec![mgr.epoch().model.clone()];

    let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut in_txn = [false; THREADS as usize];
    let mut txn_ctr = [0u64; THREADS as usize];
    let mut gate_calls = 0u64;
    let mut swaps = 0u64;
    let mut epoch_metric_bits = Vec::new();

    let window_metric_bits = |hook: &GuidedHook| -> u64 {
        let window = hook.window_snapshot();
        if window.is_empty() {
            return u64::MAX;
        }
        let model = GuidedModel::build(Tsa::from_runs(&[window]), &replay_config());
        analyzer::analyze(&model).guidance_metric_pct.to_bits()
    };

    for _step in 0..STEPS {
        // Scripted swap points: ~1 in 16 steps regenerates from the live
        // window (deterministic — the script is a pure function of seed).
        if rng.below(16) == 0 {
            let before = mgr.epoch_id();
            epoch_metric_bits.push(window_metric_bits(&hook));
            if let Some(id) = mgr.regenerate_from(&hook, DriftVerdict::Drifting) {
                assert_eq!(id, before.wrapping_add(1), "epoch ids advance by one");
                models.push(mgr.epoch().model.clone());
                swaps += 1;
            } else {
                // Thin window — nothing was installed.
                epoch_metric_bits.pop();
            }
        }

        let t = rng.below(THREADS as u64) as usize;
        let who = p((txn_ctr[t] % TXNS as u64) as u16, t as u16);
        if !in_txn[t] {
            hook.gate(who);
            gate_calls += 1;
            in_txn[t] = true;
        } else if rng.below(4) == 0 {
            hook.on_abort(who, AbortCause::Validation);
            in_txn[t] = false; // retry later re-gates
        } else {
            hook.on_commit(who);
            txn_ctr[t] += 1;
            in_txn[t] = false;
        }

        // Epoch-tag integrity: the current word must never pair a state id
        // with an epoch whose model can't have produced it.
        let (e, s) = hook.current_tag();
        assert!(
            (e as usize) < models.len(),
            "seed {seed}: current word tagged with unpublished epoch {e}"
        );
        assert!(
            s == u32::MAX || (s as usize) < models[e as usize].num_states(),
            "seed {seed}: state {s} is out of range for epoch {e} — torn old/new model read"
        );
    }

    epoch_metric_bits.push(window_metric_bits(&hook));
    let stats = hook.stats();
    assert_eq!(
        stats.passed + stats.waited + stats.released,
        gate_calls,
        "seed {seed}: gate outcomes must partition the {gate_calls} gate calls: {stats:?}"
    );
    assert_eq!(swaps, mgr.swaps(), "seed {seed}: manager swap count disagrees with script");

    ReplayOutcome {
        tseq: hook.take_run(),
        passed: stats.passed,
        waited: stats.waited,
        released: stats.released,
        gate_calls,
        swaps,
        epoch_metric_bits,
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// 1000 seeded interleavings, each replayed twice: the per-step
/// invariants hold in every run, and both replays of a seed are
/// bit-identical (Tseq, counters, swap schedule, per-epoch metrics).
#[test]
fn thousand_seeded_replays_are_deterministic_and_invariant() {
    let mut total_swaps = 0u64;
    let mut total_released = 0u64;
    for seed in 0..1000u64 {
        let a = replay(seed);
        let b = replay(seed);
        assert_eq!(a, b, "seed {seed}: same seed must reproduce the same execution");
        total_swaps += a.swaps;
        total_released += a.released;
    }
    // The harness must actually exercise the interesting paths: swaps
    // fire and the gate sometimes releases (single-threaded waiters can
    // only be released), otherwise the invariants above are vacuous.
    assert!(total_swaps > 100, "only {total_swaps} swaps across 1000 seeds");
    assert!(total_released > 0, "gate never released across 1000 seeds");
}

/// Different seeds must be able to produce different executions —
/// otherwise the PRNG plumbing is broken and the 1000-seed sweep
/// explores a single schedule.
#[test]
fn distinct_seeds_explore_distinct_schedules() {
    let outcomes: Vec<ReplayOutcome> = (0..8).map(replay).collect();
    let distinct = outcomes
        .iter()
        .map(|o| &o.tseq)
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(distinct > 1, "8 seeds produced one schedule");
}

/// Find `(setup, gated)` pairs such that after committing `setup` on a
/// fresh hook, the current word names a state whose model disallows
/// `gated` — i.e. a gate on `gated` genuinely blocks.
fn gated_fixture(cfg: &GuidanceConfig) -> (Pair, Pair) {
    for a_i in 0..(TXNS * THREADS) {
        let setup = p(a_i % TXNS, a_i / TXNS);
        let hook = GuidedHook::adaptive(seed_model(cfg), cfg.clone(), adapt_config(), None);
        hook.gate(setup);
        hook.on_commit(setup);
        let (_, s) = hook.current_tag();
        if s == u32::MAX {
            continue;
        }
        let model = hook.manager().unwrap().epoch().model.clone();
        for w_i in 0..(TXNS * THREADS) {
            let gated = p(w_i % TXNS, w_i / TXNS);
            if !model.is_allowed(StateId(s), gated) {
                return (setup, gated);
            }
        }
    }
    panic!("seed model gates nothing — fixture broken");
}

/// The release corner the model checker pins deterministically, exercised
/// against the *real* gate under real concurrency: a waiter burns its
/// final retry while the driver hot-swaps and re-tags the current word.
/// Whatever the race does, the gate must resolve exactly once (partition
/// holds); when the swap lands inside the wait window the final
/// re-examination must observe it and avoid the release (passed/waited),
/// and without a racer the k-retry release must fire deterministically.
#[test]
fn final_retry_racing_a_real_hot_swap_still_partitions_outcomes() {
    // One final re-examination after a long spin window: the swap has
    // the whole spin to land, and a release can only come from the
    // genuine budget-exhausted path.
    let cfg = GuidanceConfig { k_retries: 1, wait_spins: 500_000, ..GuidanceConfig::default() };
    let (setup, gated) = gated_fixture(&cfg);
    const ROUNDS: u64 = 25;
    let mut rescued = 0u64;
    let mut released = 0u64;
    for _ in 0..ROUNDS {
        let hook = GuidedHook::adaptive(seed_model(&cfg), cfg.clone(), adapt_config(), None);
        let mgr = hook.manager().unwrap().clone();
        hook.gate(setup);
        hook.on_commit(setup);
        let entered = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waiter = {
            let hook = hook.clone();
            let entered = entered.clone();
            std::thread::spawn(move || {
                entered.store(true, std::sync::atomic::Ordering::Release);
                hook.gate(gated);
            })
        };
        // Don't fire the swap before the waiter has had a chance to pin
        // the old epoch and enter its spin window — on a 1-core host
        // `spawn` returns long before the waiter runs, and a swap that
        // lands first turns every round into a plain gate on the new
        // epoch instead of a race.
        while !entered.load(std::sync::atomic::Ordering::Acquire) {
            std::thread::yield_now();
        }
        for _ in 0..20 {
            std::thread::yield_now();
        }
        // Race the waiter's spin window: publish a fresh epoch and re-tag
        // the current word with it.
        mgr.regenerate_from(&hook, DriftVerdict::Stale)
            .expect("window holds the setup commit");
        hook.gate(setup);
        hook.on_commit(setup);
        waiter.join().unwrap();
        let stats = hook.stats();
        // This hook saw exactly 3 gate calls: setup, the waiter, and the
        // post-swap setup. Both setup gates pass on their first check
        // (UNKNOWN word, then epoch-mismatched word), so any surplus over
        // 2 in passed+waited is the waiter being rescued by the swap.
        assert_eq!(
            stats.passed + stats.waited + stats.released,
            3,
            "round outcomes must partition the gate calls: {stats:?}"
        );
        rescued += stats.passed + stats.waited - 2;
        released += stats.released;
    }
    // No racer: the budget-exhausted release is deterministic.
    let hook = GuidedHook::adaptive(seed_model(&cfg), cfg.clone(), adapt_config(), None);
    hook.gate(setup);
    hook.on_commit(setup);
    hook.gate(gated);
    assert_eq!(hook.stats().released, 1, "no rescue => the final retry must release");
    // Across the raced rounds the swap must have rescued the waiter at
    // least once — 500k spins dwarf a rebuild+commit — while the release
    // path stays reachable (the no-racer round above proves it).
    assert!(
        rescued > 0,
        "swap never landed inside a 500k-spin wait across {ROUNDS} rounds ({released} releases)"
    );
}

/// Real concurrency: worker threads gate/commit while the driver
/// hot-swaps models rebuilt from the live window. Afterwards the epoch
/// tag must still name a valid state in the tagged epoch's model, and
/// the gate counters must partition the workers' exact call count.
#[test]
fn concurrent_hot_swaps_never_tear_the_current_word() {
    let cfg = GuidanceConfig::default();
    let hook = GuidedHook::adaptive(seed_model(&cfg), cfg, adapt_config(), None);
    let mgr = hook.manager().unwrap().clone();
    let mut models: Vec<Arc<GuidedModel>> = vec![mgr.epoch().model.clone()];

    const PER_THREAD: u64 = 3000;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let hook = hook.clone();
            std::thread::spawn(move || {
                let mut rng = Rng::new(t as u64 + 17);
                for i in 0..PER_THREAD {
                    let who = p((i % TXNS as u64) as u16, t);
                    hook.gate(who);
                    if rng.below(5) == 0 {
                        hook.on_abort(who, AbortCause::ReadVersion);
                    } else {
                        hook.on_commit(who);
                    }
                }
            })
        })
        .collect();
    // Swap as fast as the window refills while the workers run.
    while !workers.iter().all(|w| w.is_finished()) {
        if mgr.regenerate_from(&hook, DriftVerdict::Stale).is_some() {
            models.push(mgr.epoch().model.clone());
        }
        std::thread::yield_now();
    }
    for w in workers {
        w.join().unwrap();
    }

    assert_eq!(models.len() as u64 - 1, mgr.swaps());
    let stats = hook.stats();
    assert_eq!(
        stats.passed + stats.waited + stats.released,
        THREADS as u64 * PER_THREAD,
        "gate outcomes must partition the exact gate-call count: {stats:?}"
    );
    let (e, s) = hook.current_tag();
    assert!((e as usize) < models.len(), "tagged with unpublished epoch {e}");
    assert!(
        s == u32::MAX || (s as usize) < models[e as usize].num_states(),
        "state {s} out of range for epoch {e} — torn old/new model read"
    );
}
