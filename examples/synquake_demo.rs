//! SynQuake demo: run the game server on every quest layout and print
//! frame-time statistics, abort ratios, and the world audit.
//!
//! ```sh
//! cargo run --release --example synquake_demo [threads] [players] [frames]
//! ```

use gstm_core::metrics;
use gstm_libtm::{LibTm, LibTmConfig};
use gstm_synquake::{run_game, GameConfig, QuestLayout};

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: u16 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let players: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(192);
    let frames: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);

    println!("SynQuake: {players} players, {frames} frames, {threads} threads\n");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>8} {:>7}",
        "quest", "mean ms", "stddev ms", "aborts", "commits", "audit"
    );
    for quest in [
        QuestLayout::WorstCase4,
        QuestLayout::Moving4,
        QuestLayout::Quadrants4,
        QuestLayout::CenterSpread6,
    ] {
        let tm = LibTm::new(LibTmConfig {
            yield_prob_log2: Some(2),
            ..LibTmConfig::default()
        });
        let cfg = GameConfig {
            threads,
            players,
            frames,
            quest,
            ..GameConfig::default()
        };
        let r = run_game(&tm, &cfg);
        let stats = r.merged_stats();
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>8} {:>8} {:>7}",
            quest.name(),
            metrics::mean(&r.frame_secs) * 1e3,
            metrics::std_dev(&r.frame_secs) * 1e3,
            stats.aborts,
            stats.commits,
            if r.audit_failures == 0 { "ok" } else { "BAD" },
        );
        assert_eq!(r.audit_failures, 0, "world must stay consistent");
    }
    println!(
        "\nquests that concentrate players (4worst_case, 4center_spread6) \
         conflict more than the spread-out 4quadrants."
    );
}
