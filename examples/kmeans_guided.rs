//! Guided kmeans: run the paper's full pipeline on one STAMP benchmark
//! and print the per-thread variance comparison, the model summary, and
//! the non-determinism reduction — a one-benchmark slice of Figures 4, 9
//! and 10.
//!
//! ```sh
//! cargo run --release --example kmeans_guided [threads] [runs]
//! ```

use gstm_core::{metrics, PinPolicy};
use gstm_harness::experiment::{run_experiment, ExperimentConfig};
use gstm_stamp::{by_name, InputSize};
use gstm_tl2::ClockMode;

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: u16 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);

    let bench = by_name("kmeans").expect("kmeans is registered");
    let cfg = ExperimentConfig {
        threads,
        profile_runs: runs,
        measure_runs: runs,
        train_size: InputSize::Medium,
        test_size: InputSize::Medium,
        yield_k: Some(2),
        guidance: Default::default(),
        seed: 0x5eed_cafe,
        adaptive: None,
        profile_threads: None,
        clock: ClockMode::Global,
        pin: PinPolicy::None,
    };
    println!("running kmeans pipeline @ {threads} threads, {runs} runs/mode ...");
    let e = run_experiment(&*bench, &cfg);

    println!(
        "\nmodel: {} states; analyzer metric {:.1}% ({:?})",
        e.model_states, e.analyzer.guidance_metric_pct, e.analyzer.verdict
    );

    let d = e.default_m.per_thread_std_dev();
    let g = e.guided_m.per_thread_std_dev();
    println!("\nper-thread execution-time std-dev (Figure 4 row for kmeans):");
    println!("thread |   default |    guided | improvement");
    for t in 0..threads as usize {
        println!(
            "{t:>6} | {:>9.6} | {:>9.6} | {:>10.1}%",
            d[t],
            g[t],
            metrics::pct_improvement(d[t], g[t])
        );
    }

    println!(
        "\nnon-determinism: default {} distinct states, guided {} ({:+.1}% reduction)",
        e.default_m.non_determinism,
        e.guided_m.non_determinism,
        e.nondeterminism_reduction_pct()
    );
    println!(
        "abort-tail metric improvement: {:.1}% (Table IV row)",
        e.tail_improvement_pct()
    );
    println!("slowdown: {:.2}x (Figure 10 row)", e.slowdown());
    println!(
        "gate: {} passed / {} waited / {} released / {} unknown states",
        e.gate.passed, e.gate.waited, e.gate.released, e.gate.unknown_states
    );
}
