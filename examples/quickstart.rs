//! Quickstart: the guided-STM pipeline end to end on a toy workload.
//!
//! 1. Run a contended STM workload while *profiling* it (recording the
//!    sequence of thread transactional states).
//! 2. Build the Thread State Automaton and ask the analyzer whether the
//!    model is biased enough to guide execution.
//! 3. Re-run the workload *guided* by the model and compare the
//!    run-to-run variance of each thread's execution time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gstm_core::prelude::*;
use gstm_core::{analyzer, metrics};
use gstm_tl2::{Stm, StmConfig, TVar};
use std::sync::Arc;
use std::time::Instant;

const THREADS: u16 = 4;
const OPS_PER_THREAD: usize = 400;
const RUNS: usize = 8;

/// A contended workload: all threads hammer a small set of counters.
fn workload(stm: &Arc<Stm>) -> Vec<f64> {
    let counters: Vec<TVar<u64>> = (0..4).map(|_| TVar::new(0)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stm = Arc::clone(stm);
                let counters = counters.clone();
                s.spawn(move || {
                    let mut ctx = stm.register_as(ThreadId(t));
                    let t0 = Instant::now();
                    for i in 0..OPS_PER_THREAD {
                        let c = &counters[(t as usize + i) % counters.len()];
                        ctx.atomically(TxnId(0), |tx| tx.modify(c, |x| x + 1));
                    }
                    t0.elapsed().as_secs_f64()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn per_thread_std_dev(times: &[Vec<f64>]) -> Vec<f64> {
    (0..THREADS as usize)
        .map(|t| {
            let series: Vec<f64> = times.iter().map(|run| run[t]).collect();
            metrics::std_dev(&series)
        })
        .collect()
}

fn main() {
    let stm_config = StmConfig::with_yield_injection(2);

    // --- 1. Profile ---
    println!("profiling {RUNS} runs ...");
    let recorder = Arc::new(RecorderHook::new());
    let mut train_runs = Vec::new();
    for _ in 0..RUNS {
        let stm = Stm::with_hook(recorder.clone(), stm_config);
        workload(&stm);
        train_runs.push(recorder.take_run());
    }

    // --- 2. Model + analysis ---
    let tsa = Tsa::from_runs(&train_runs);
    println!(
        "model: {} states, {} edges",
        tsa.num_states(),
        tsa.num_edges()
    );
    let guidance = GuidanceConfig::default();
    let model = Arc::new(GuidedModel::build(tsa, &guidance));
    let report = analyzer::analyze(&model);
    println!(
        "analyzer: guidance metric {:.1}% -> {:?}",
        report.guidance_metric_pct, report.verdict
    );

    // --- 3. Measure default vs guided ---
    let mut default_times = Vec::new();
    for _ in 0..RUNS {
        let stm = Stm::new(stm_config);
        default_times.push(workload(&stm));
    }
    let guided_hook = Arc::new(GuidedHook::new(model, guidance));
    let mut guided_times = Vec::new();
    for _ in 0..RUNS {
        let stm = Stm::with_hook(guided_hook.clone(), stm_config);
        guided_times.push(workload(&stm));
    }

    let d = per_thread_std_dev(&default_times);
    let g = per_thread_std_dev(&guided_times);
    println!("\nper-thread execution-time std-dev (seconds):");
    println!("thread |   default |    guided | improvement");
    for t in 0..THREADS as usize {
        println!(
            "{t:>6} | {:>9.6} | {:>9.6} | {:>10.1}%",
            d[t],
            g[t],
            metrics::pct_improvement(d[t], g[t])
        );
    }
    let gate = guided_hook.stats();
    println!(
        "\ngate: {} passed, {} waited, {} released, {} unknown states",
        gate.passed, gate.waited, gate.released, gate.unknown_states
    );
}
