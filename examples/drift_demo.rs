//! Model-drift walkthrough: run kmeans guided twice — once with a model
//! profiled under the *same* conditions as the measured execution, once
//! with a deliberately stale model profiled at a different concurrency
//! level — each with a [`DriftTracker`] attached, and print the two
//! drift reports side by side. The stale model's report should carry a
//! `drifting`/`stale` verdict and a re-profile recommendation; the
//! matching model's should not.
//!
//! ```sh
//! cargo run --release --example drift_demo [threads] [runs]
//! ```

use gstm_core::drift::DriftTracker;
use gstm_core::PinPolicy;
use gstm_core::guidance::{GuidedHook, RecorderHook};
use gstm_core::tsa::{GuidedModel, Tsa};
use gstm_core::tss::StateKey;
use gstm_harness::experiment::ExperimentConfig;
use gstm_stamp::{by_name, Benchmark, InputSize, RunConfig};
use gstm_tl2::{ClockMode, Stm, StmConfig};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: u16 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let stale_threads = (threads / 2).max(1);

    let bench = by_name("kmeans").expect("kmeans is registered");
    let cfg = ExperimentConfig {
        threads,
        profile_runs: runs,
        measure_runs: runs,
        train_size: InputSize::Small,
        test_size: InputSize::Small,
        yield_k: Some(2),
        guidance: Default::default(),
        seed: 0x7e1e_5eed,
        adaptive: None,
        profile_threads: None,
        clock: ClockMode::Global,
        pin: PinPolicy::None,
    };

    println!(
        "profiling kmeans: matching model @ {threads} threads, stale model @ {stale_threads} \
         threads ({runs} runs each) ..."
    );
    let fresh = Arc::new(GuidedModel::build(
        Tsa::from_runs(&profile(&*bench, &cfg, threads)),
        &cfg.guidance,
    ));
    let stale = Arc::new(GuidedModel::build(
        Tsa::from_runs(&profile(&*bench, &cfg, stale_threads)),
        &cfg.guidance,
    ));
    println!(
        "matching model: {} states; stale model: {} states\n",
        fresh.tsa().num_states(),
        stale.tsa().num_states()
    );

    let mut codes = Vec::new();
    for (label, model) in [
        (format!("matching (profiled @ {threads} threads)"), fresh),
        (format!("stale (profiled @ {stale_threads} threads)"), stale),
    ] {
        let drift = Arc::new(DriftTracker::new(&model));
        let hook = Arc::new(GuidedHook::with_observability(
            model,
            cfg.guidance,
            None,
            Some(drift.clone()),
        ));
        for _ in 0..cfg.measure_runs {
            let stm = Stm::with_telemetry(
                hook.clone(),
                StmConfig { yield_prob_log2: cfg.yield_k, ..StmConfig::default() },
                None,
            );
            bench.run(
                &stm,
                &RunConfig { threads, size: cfg.test_size, seed: cfg.seed },
            );
            hook.take_run();
        }
        let report = drift.report();
        println!("--- drift report: {label} model ---");
        print!("{}", report.render());
        println!();
        codes.push(report.verdict.code());
    }

    if codes[1] > codes[0] && codes[1] >= 2 {
        println!(
            "stale model correctly flagged ({} > {}): guidance would re-profile here",
            codes[1], codes[0]
        );
    } else {
        println!(
            "warning: expected the stale model to rank worse (matching code {}, stale code {})",
            codes[0], codes[1]
        );
    }
}

/// Profile `bench` at `threads` threads and return one Tseq per run.
fn profile(bench: &dyn Benchmark, cfg: &ExperimentConfig, threads: u16) -> Vec<Vec<StateKey>> {
    let recorder = Arc::new(RecorderHook::new());
    let mut runs = Vec::with_capacity(cfg.profile_runs);
    for _ in 0..cfg.profile_runs {
        let stm = Stm::with_telemetry(
            recorder.clone(),
            StmConfig { yield_prob_log2: cfg.yield_k, ..StmConfig::default() },
            None,
        );
        bench.run(
            &stm,
            &RunConfig { threads, size: cfg.train_size, seed: cfg.seed },
        );
        runs.push(recorder.take_run());
    }
    runs
}
