//! Telemetry walkthrough: run kmeans unguided and guided with a
//! [`Telemetry`] collector attached to each STM, then print the two
//! abort-cause breakdowns side by side, the commit-latency summaries,
//! the guided gate outcomes, and the guided run's Prometheus exposition.
//!
//! ```sh
//! cargo run --release --example telemetry_demo [threads] [runs]
//! ```

use gstm_core::guidance::{GuidedHook, NoopHook};
use gstm_core::PinPolicy;
use gstm_core::telemetry::{Telemetry, TelemetrySnapshot, ABORT_CAUSE_NAMES};
use gstm_harness::experiment::{train_model, ExperimentConfig};
use gstm_stamp::{by_name, Benchmark, InputSize, RunConfig};
use gstm_tl2::{ClockMode, Stm, StmConfig};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: u16 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);

    let bench = by_name("kmeans").expect("kmeans is registered");
    let cfg = ExperimentConfig {
        threads,
        profile_runs: runs,
        measure_runs: runs,
        train_size: InputSize::Small,
        test_size: InputSize::Small,
        yield_k: Some(2),
        guidance: Default::default(),
        seed: 0x7e1e_5eed,
        adaptive: None,
        profile_threads: None,
        clock: ClockMode::Global,
        pin: PinPolicy::None,
    };

    println!("training guided model on kmeans @ {threads} threads ({runs} profiling runs) ...");
    let model = Arc::new(train_model(&*bench, &cfg));
    println!("model: {} states\n", model.tsa().num_states());

    // Unguided: NoopHook, telemetry counting every commit and abort.
    let unguided = Arc::new(Telemetry::counters_only());
    drive(&*bench, &cfg, Arc::new(NoopHook), &unguided, runs);

    // Guided: same workload through the gate, reporting into its own
    // collector. One hook across runs, like the harness's phase 4.
    let guided = Arc::new(Telemetry::counters_only());
    let hook = Arc::new(GuidedHook::with_telemetry(
        model,
        cfg.guidance,
        Some(guided.clone()),
    ));
    drive(&*bench, &cfg, hook, &guided, runs);

    let u = unguided.snapshot();
    let g = guided.snapshot();

    println!("telemetry, {runs} runs each @ {threads} threads:\n");
    println!("{:<22} {:>12} {:>12}", "", "unguided", "guided");
    println!("{:<22} {:>12} {:>12}", "commits", u.commits, g.commits);
    println!(
        "{:<22} {:>12} {:>12}",
        "aborts",
        u.aborts_total(),
        g.aborts_total()
    );
    for (i, name) in ABORT_CAUSE_NAMES.iter().enumerate() {
        if u.aborts[i] != 0 || g.aborts[i] != 0 {
            println!(
                "{:<22} {:>12} {:>12}",
                format!("  cause={name}"),
                u.aborts[i],
                g.aborts[i]
            );
        }
    }
    println!(
        "{:<22} {:>11.2}% {:>11.2}%",
        "abort rate",
        abort_rate(&u),
        abort_rate(&g)
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "commit p50 (ns, ≤)",
        u.commit_ns.quantile_upper_bound(0.50),
        g.commit_ns.quantile_upper_bound(0.50)
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "commit p99 (ns, ≤)",
        u.commit_ns.quantile_upper_bound(0.99),
        g.commit_ns.quantile_upper_bound(0.99)
    );
    println!(
        "\nguided gate outcomes: {} passed / {} waited / {} released",
        g.gate_passed, g.gate_waited, g.gate_released
    );
    if g.gate_wait_ns.count > 0 {
        println!(
            "gate latency p99: ≤ {} ns over {} gated attempts",
            g.gate_wait_ns.quantile_upper_bound(0.99),
            g.gate_wait_ns.count
        );
    }

    println!("\n--- guided Prometheus exposition ---");
    print!("{}", g.render_prometheus());
}

/// Run `runs` executions of `bench` on fresh STM instances that all
/// report into `telemetry`.
fn drive(
    bench: &dyn Benchmark,
    cfg: &ExperimentConfig,
    hook: Arc<dyn gstm_core::guidance::GuidanceHook>,
    telemetry: &Arc<Telemetry>,
    runs: usize,
) {
    let stm_cfg = StmConfig {
        yield_prob_log2: cfg.yield_k,
        ..StmConfig::default()
    };
    let run_cfg = RunConfig {
        threads: cfg.threads,
        size: cfg.test_size,
        seed: cfg.seed,
    };
    for _ in 0..runs {
        let stm = Stm::with_telemetry(hook.clone(), stm_cfg, Some(telemetry.clone()));
        bench.run(&stm, &run_cfg);
    }
}

fn abort_rate(s: &TelemetrySnapshot) -> f64 {
    let attempts = s.commits + s.aborts_total();
    if attempts == 0 {
        0.0
    } else {
        100.0 * s.aborts_total() as f64 / attempts as f64
    }
}
