//! Bank transfers: the classic STM demo, showing composable atomicity,
//! explicit retry, and conflict statistics on `gstm-tl2`.
//!
//! Threads transfer money between accounts; an auditor thread repeatedly
//! snapshots the whole bank inside one transaction and checks that the
//! total is conserved *at every instant it looks* — the property locks
//! make hard and STM makes trivial.
//!
//! ```sh
//! cargo run --release --example bank_transfer
//! ```

use gstm_core::{ThreadId, TxnId};
use gstm_tl2::{Stm, StmConfig, TVar, TxResult, Txn};
use std::sync::Arc;

const ACCOUNTS: usize = 16;
const INITIAL: i64 = 1_000;
const TRANSFERS_PER_THREAD: usize = 2_000;
const THREADS: u16 = 4;

/// Move up to `amount` from `from` to `to`; transfers what the source can
/// afford (skipping blocked transfers rather than waiting keeps the demo
/// deadlock-free — a transfer that *blocked* on funds could starve when
/// every would-be depositor is itself blocked).
fn transfer(
    tx: &mut Txn,
    from: &TVar<i64>,
    to: &TVar<i64>,
    amount: i64,
) -> TxResult<i64> {
    let balance = tx.read(from)?;
    let moved = amount.min(balance.max(0));
    if moved > 0 {
        tx.write(from, balance - moved)?;
        let dst = tx.read(to)?;
        tx.write(to, dst + moved)?;
    }
    Ok(moved)
}

fn main() {
    let stm = Stm::new(StmConfig::with_yield_injection(2));
    let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect();
    let expected_total = (ACCOUNTS as i64) * INITIAL;

    std::thread::scope(|s| {
        // Transfer threads.
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                let mut ctx = stm.register_as(ThreadId(t));
                let mut r: u64 = 0x1234_5678 ^ (t as u64) << 32;
                for _ in 0..TRANSFERS_PER_THREAD {
                    r = r
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let from = (r >> 16) as usize % ACCOUNTS;
                    let to = (r >> 32) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = (r % 50) as i64 + 1;
                    let (a, b) = (accounts[from].clone(), accounts[to].clone());
                    ctx.atomically(TxnId(0), |tx| transfer(tx, &a, &b, amount));
                }
                let st = ctx.stats();
                println!(
                    "thread {t}: {} commits, {} aborts ({} explicit retries)",
                    st.commits, st.aborts, st.explicit
                );
            });
        }
        // Auditor thread: consistent whole-bank snapshots.
        let stm_a = Arc::clone(&stm);
        let accounts_a = accounts.clone();
        s.spawn(move || {
            let mut ctx = stm_a.register_as(ThreadId(THREADS));
            for audit in 0..200 {
                let total = ctx.atomically(TxnId(1), |tx| {
                    let mut sum = 0i64;
                    for a in &accounts_a {
                        sum += tx.read(a)?;
                    }
                    Ok(sum)
                });
                assert_eq!(
                    total, expected_total,
                    "audit {audit}: money created or destroyed!"
                );
                std::thread::yield_now();
            }
            println!("auditor: 200 consistent snapshots, total always {expected_total}");
        });
    });

    let final_total: i64 = accounts.iter().map(TVar::load_quiesced).sum();
    println!(
        "final total: {final_total} (expected {expected_total}); {} commits, {} aborts overall",
        stm.total_commits(),
        stm.total_aborts()
    );
    assert_eq!(final_total, expected_total);

    // Bonus: `Txn::retry` as a condition variable — a consumer blocks (via
    // abort-and-retry) until a producer funds the mailbox. Progress is
    // guaranteed because the producer never waits on the consumer.
    let mailbox = TVar::new(0i64);
    let stm2 = Stm::new(StmConfig::default());
    std::thread::scope(|s| {
        let stm_c = Arc::clone(&stm2);
        let mb = mailbox.clone();
        s.spawn(move || {
            let mut ctx = stm_c.register_as(ThreadId(0));
            let got = ctx.atomically(TxnId(2), |tx| {
                let v = tx.read(&mb)?;
                if v == 0 {
                    return Err(tx.retry()); // block until funded
                }
                tx.write(&mb, 0)?;
                Ok(v)
            });
            println!("consumer received {got} via retry-based blocking");
            assert_eq!(got, 250);
        });
        let stm_p = Arc::clone(&stm2);
        let mb = mailbox.clone();
        s.spawn(move || {
            let mut ctx = stm_p.register_as(ThreadId(1));
            std::thread::yield_now();
            ctx.atomically(TxnId(3), |tx| tx.write(&mb, 250));
        });
    });
}
